//! One node's direct channel.
//!
//! The link is full-duplex: the upstream (node → Controller/Backend) and
//! downstream (→ node) directions have independent capacity δ and are each
//! used serially — a node fetching a task input cannot simultaneously fetch
//! another input, but can be uploading a result meanwhile. Transfers that
//! hit loss are retransmitted whole after a timeout (task/result payloads
//! are single application-level messages in this model).

use oddci_faults::{FaultClass, FaultCounters, FaultInjector};
use oddci_telemetry::{Phase, Telemetry};
use oddci_types::{Bandwidth, DataSize, DirectChannelConfig, NodeId, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Transfer direction over a [`DirectLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Node → Controller/Backend.
    Up,
    /// Controller/Backend → node.
    Down,
}

/// One node's full-duplex point-to-point channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectLink {
    config: DirectChannelConfig,
    busy_until_up: SimTime,
    busy_until_down: SimTime,
    /// Total payload bits moved (both directions), for accounting.
    pub bits_transferred: u64,
    /// Number of retransmissions suffered, for accounting.
    pub retransmissions: u64,
}

impl DirectLink {
    /// Creates an idle link with the given configuration.
    pub fn new(config: DirectChannelConfig) -> Self {
        config.validate().expect("valid direct channel config");
        DirectLink {
            config,
            busy_until_up: SimTime::ZERO,
            busy_until_down: SimTime::ZERO,
            bits_transferred: 0,
            retransmissions: 0,
        }
    }

    /// Link capacity δ.
    pub fn capacity(&self) -> Bandwidth {
        self.config.delta
    }

    /// The configuration this link was built with.
    pub fn config(&self) -> &DirectChannelConfig {
        &self.config
    }

    /// Schedules a transfer of `size` starting no earlier than `now` and
    /// returns its completion instant. The direction stays busy until then.
    ///
    /// Loss is modelled per attempt: with probability `loss_rate` the whole
    /// message is lost and retransmitted after a timeout of one RTT.
    pub fn transfer<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: DataSize,
        dir: Direction,
        rng: &mut R,
    ) -> SimTime {
        let busy = match dir {
            Direction::Up => &mut self.busy_until_up,
            Direction::Down => &mut self.busy_until_down,
        };
        let start = if *busy > now { *busy } else { now };
        let one_attempt = self.config.latency + size.transfer_time(self.config.delta);
        let mut finish = start + one_attempt;
        // Geometric retransmissions.
        if self.config.loss_rate > 0.0 {
            while rng.random::<f64>() < self.config.loss_rate {
                self.retransmissions += 1;
                // Loss detected after a retransmission timeout of 2 RTTs,
                // then the attempt repeats.
                finish = finish + self.config.latency * 4 + one_attempt;
            }
        }
        *busy = finish;
        self.bits_transferred += size.bits();
        finish
    }

    /// [`transfer`](Self::transfer) under an injected-fault regime.
    ///
    /// Returns `None` when the message vanishes entirely (loss burst or
    /// partition episode at `now`) — the link is then *not* occupied, the
    /// message died in the network, and the caller is expected to retry
    /// with backoff. Otherwise returns the completion instant, stretched
    /// by the active latency-spike multiplier if any (queueing delay in
    /// the network, so it extends delivery without monopolizing the
    /// link's own serializer). Every injection is recorded in `counters`.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_faulted<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: DataSize,
        dir: Direction,
        rng: &mut R,
        injector: &FaultInjector,
        node: NodeId,
        counters: &mut FaultCounters,
    ) -> Option<SimTime> {
        if injector.partitioned(node, now) {
            counters.record(FaultClass::Partition);
            return None;
        }
        if injector.direct_dropped(node, now) {
            counters.record(FaultClass::DirectLoss);
            return None;
        }
        let done = self.transfer(now, size, dir, rng);
        let mult = injector.latency_multiplier(node, now);
        if mult > 1.0 {
            counters.record(FaultClass::LatencySpike);
            Some(now + (done - now).mul_f64(mult))
        } else {
            Some(done)
        }
    }

    /// [`transfer`](Self::transfer) that also records the delivery as a
    /// `net.transfer` span in `tele` (feeding the direct-channel RTT
    /// histogram). The span covers request-to-delivery including queueing
    /// and retransmissions; `scope` carries the payload size in bytes.
    pub fn transfer_telemetered<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: DataSize,
        dir: Direction,
        rng: &mut R,
        tele: &Telemetry,
        track: u64,
    ) -> SimTime {
        let done = self.transfer(now, size, dir, rng);
        tele.span(
            now.as_micros(),
            done.as_micros(),
            Phase::DirectTransfer,
            track,
            size.bits() / 8,
        );
        done
    }

    /// [`transfer_faulted`](Self::transfer_faulted) that records delivered
    /// messages as `net.transfer` spans. Messages that vanish (partition or
    /// loss burst) are not recorded here — the caller's retry path emits
    /// the `retry` instants that account for them.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_faulted_telemetered<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: DataSize,
        dir: Direction,
        rng: &mut R,
        injector: &FaultInjector,
        node: NodeId,
        counters: &mut FaultCounters,
        tele: &Telemetry,
    ) -> Option<SimTime> {
        let done = self.transfer_faulted(now, size, dir, rng, injector, node, counters)?;
        tele.span(
            now.as_micros(),
            done.as_micros(),
            Phase::DirectTransfer,
            node.raw(),
            size.bits() / 8,
        );
        Some(done)
    }

    /// Completion time of a loss-free transfer starting exactly at `now` on
    /// an idle link — the closed-form the analytical model uses.
    pub fn ideal_transfer_time(&self, size: DataSize) -> SimDuration {
        self.config.latency + size.transfer_time(self.config.delta)
    }

    /// When the given direction becomes free.
    pub fn busy_until(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::Up => self.busy_until_up,
            Direction::Down => self.busy_until_down,
        }
    }

    /// Clears queued work (node power-off: in-flight transfers are lost).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until_up = now;
        self.busy_until_down = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lossless() -> DirectLink {
        DirectLink::new(DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: 0.0,
        })
    }

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        // 1 KB = 8192 bits over 150 kbps ≈ 54.613 ms, plus 50 ms latency.
        let done = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(1),
            Direction::Up,
            &mut rng,
        );
        let expect = 0.050 + 8192.0 / 150_000.0;
        assert!((done.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn serial_use_queues_transfers() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let first = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(10),
            Direction::Up,
            &mut rng,
        );
        let second = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(10),
            Direction::Up,
            &mut rng,
        );
        assert_eq!(
            second - first,
            first - SimTime::ZERO,
            "second waits for first"
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let up = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(10),
            Direction::Up,
            &mut rng,
        );
        let down = link.transfer(
            SimTime::ZERO,
            DataSize::from_kilobytes(10),
            Direction::Down,
            &mut rng,
        );
        assert_eq!(up, down, "full duplex: no cross-direction queueing");
    }

    #[test]
    fn loss_inflates_completion() {
        let cfg = DirectChannelConfig {
            delta: Bandwidth::from_kbps(150.0),
            latency: SimDuration::from_millis(50),
            loss_rate: 0.5,
        };
        let mut lossy = DirectLink::new(cfg);
        let mut rng = SmallRng::seed_from_u64(7);
        let size = DataSize::from_kilobytes(4);
        let mut total_lossy = 0.0;
        let n = 2000;
        for i in 0..n {
            let t0 = SimTime::from_secs(i * 100);
            lossy.reset(t0);
            let done = lossy.transfer(t0, size, Direction::Up, &mut rng);
            total_lossy += (done - t0).as_secs_f64();
        }
        let mean_lossy = total_lossy / n as f64;
        let ideal = lossless().ideal_transfer_time(size).as_secs_f64();
        // E[attempts] = 1/(1-0.5) = 2; plus timeout overhead -> clearly >1.5x.
        assert!(mean_lossy > ideal * 1.5, "mean={mean_lossy} ideal={ideal}");
        assert!(lossy.retransmissions > 0);
    }

    #[test]
    fn accounting_tracks_bits() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        link.transfer(
            SimTime::ZERO,
            DataSize::from_bytes(100),
            Direction::Up,
            &mut rng,
        );
        link.transfer(
            SimTime::ZERO,
            DataSize::from_bytes(50),
            Direction::Down,
            &mut rng,
        );
        assert_eq!(link.bits_transferred, 150 * 8);
    }

    #[test]
    fn reset_clears_queue() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        link.transfer(
            SimTime::ZERO,
            DataSize::from_megabytes(1),
            Direction::Up,
            &mut rng,
        );
        assert!(link.busy_until(Direction::Up) > SimTime::from_secs(10));
        link.reset(SimTime::from_secs(1));
        assert_eq!(link.busy_until(Direction::Up), SimTime::from_secs(1));
    }

    #[test]
    fn faulted_transfer_drops_and_spikes() {
        use oddci_faults::{FaultPlan, FaultSpec};
        let node = NodeId::new(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let size = DataSize::from_kilobytes(1);

        // Total loss: every message vanishes, link stays idle.
        let lossy = FaultInjector::new(
            FaultPlan::none().with(FaultSpec::new(FaultClass::DirectLoss, 1.0).magnitude(10.0)),
            1,
        );
        let mut link = lossless();
        let mut counters = FaultCounters::default();
        let out = link.transfer_faulted(
            SimTime::ZERO,
            size,
            Direction::Up,
            &mut rng,
            &lossy,
            node,
            &mut counters,
        );
        assert_eq!(out, None);
        assert_eq!(counters.direct_losses, 1);
        assert_eq!(
            link.busy_until(Direction::Up),
            SimTime::ZERO,
            "dropped in the network"
        );

        // Permanent 4x latency spike: delivery stretches, and is counted.
        let spiky = FaultInjector::new(
            FaultPlan::none().with(FaultSpec::new(FaultClass::LatencySpike, 1.0).magnitude(4.0)),
            1,
        );
        let mut link = lossless();
        let nominal = link.ideal_transfer_time(size);
        let done = link
            .transfer_faulted(
                SimTime::ZERO,
                size,
                Direction::Up,
                &mut rng,
                &spiky,
                node,
                &mut counters,
            )
            .unwrap();
        let stretch = done.as_secs_f64() / nominal.as_secs_f64();
        assert!((3.9..4.1).contains(&stretch), "stretch {stretch}");
        assert_eq!(counters.latency_spikes, 1);

        // No faults: identical to the plain path.
        let mut a = lossless();
        let mut b = lossless();
        let mut ra = SmallRng::seed_from_u64(9);
        let mut rb = SmallRng::seed_from_u64(9);
        let plain = a.transfer(SimTime::ZERO, size, Direction::Up, &mut ra);
        let faulted = b
            .transfer_faulted(
                SimTime::ZERO,
                size,
                Direction::Up,
                &mut rb,
                &FaultInjector::disabled(),
                node,
                &mut counters,
            )
            .unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    fn partition_cuts_both_directions() {
        use oddci_faults::{FaultPlan, FaultSpec};
        let inj = FaultInjector::new(
            FaultPlan::none().with(FaultSpec::new(FaultClass::Partition, 1.0).magnitude(60.0)),
            2,
        );
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counters = FaultCounters::default();
        for dir in [Direction::Up, Direction::Down] {
            let out = link.transfer_faulted(
                SimTime::from_secs(5),
                DataSize::from_bytes(64),
                dir,
                &mut rng,
                &inj,
                NodeId::new(0),
                &mut counters,
            );
            assert_eq!(out, None);
        }
        assert_eq!(counters.partitions, 2);
    }

    #[test]
    fn transfer_starting_later_respects_now() {
        let mut link = lossless();
        let mut rng = SmallRng::seed_from_u64(1);
        let done = link.transfer(
            SimTime::from_secs(100),
            DataSize::from_bytes(1),
            Direction::Up,
            &mut rng,
        );
        assert!(done > SimTime::from_secs(100));
    }
}
