//! Property tests on the Xlet lifecycle state machine (paper Figure 4).

use oddci_receiver::middleware::{Xlet, XletState};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Init,
    Start,
    Pause,
    Destroy,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::Init),
            Just(Op::Start),
            Just(Op::Pause),
            Just(Op::Destroy)
        ],
        0..64,
    )
}

/// The reference transition relation of Figure 4.
fn legal(state: XletState, op: Op) -> Option<XletState> {
    match (state, op) {
        (XletState::Loaded, Op::Init) => Some(XletState::Paused),
        (XletState::Paused, Op::Start) => Some(XletState::Started),
        (XletState::Started, Op::Pause) => Some(XletState::Paused),
        (XletState::Loaded | XletState::Paused | XletState::Started, Op::Destroy) => {
            Some(XletState::Destroyed)
        }
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The implementation agrees with the reference transition relation on
    /// every op of every random sequence: legal ops succeed and land in the
    /// reference state; illegal ops fail and leave the state unchanged.
    #[test]
    fn xlet_matches_reference_machine(script in ops()) {
        let mut xlet = Xlet::load(1, "prop");
        let mut model = XletState::Loaded;
        for op in script {
            let result = match op {
                Op::Init => xlet.init(),
                Op::Start => xlet.start(),
                Op::Pause => xlet.pause(),
                Op::Destroy => xlet.destroy(),
            };
            match legal(model, op) {
                Some(next) => {
                    prop_assert!(result.is_ok(), "{op:?} from {model:?} must succeed");
                    model = next;
                }
                None => {
                    prop_assert!(result.is_err(), "{op:?} from {model:?} must fail");
                }
            }
            prop_assert_eq!(xlet.state(), model);
        }
    }

    /// Destroyed is absorbing: once destroyed, no sequence revives the Xlet.
    #[test]
    fn destroyed_is_absorbing(script in ops()) {
        let mut xlet = Xlet::load(1, "prop");
        xlet.destroy().unwrap();
        for op in script {
            let _ = match op {
                Op::Init => xlet.init(),
                Op::Start => xlet.start(),
                Op::Pause => xlet.pause(),
                Op::Destroy => xlet.destroy(),
            };
            prop_assert_eq!(xlet.state(), XletState::Destroyed);
        }
    }

    /// pause_cycles counts exactly the successful Started→Paused edges.
    #[test]
    fn pause_cycles_accounting(script in ops()) {
        let mut xlet = Xlet::load(1, "prop");
        let mut model = XletState::Loaded;
        let mut expected_pauses = 0u32;
        for op in script {
            if matches!(op, Op::Pause) && model == XletState::Started {
                expected_pauses += 1;
            }
            let _ = match op {
                Op::Init => xlet.init(),
                Op::Start => xlet.start(),
                Op::Pause => xlet.pause(),
                Op::Destroy => xlet.destroy(),
            };
            if let Some(next) = legal(model, op) {
                model = next;
            }
        }
        prop_assert_eq!(xlet.pause_cycles, expected_pauses);
    }
}
