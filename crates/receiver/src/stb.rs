//! The set-top box device model.
//!
//! Bundles the hardware inventory (modelled after the paper's STi7109 test
//! box: 256 MB RAM, 32 MB flash), the tuner, the power/usage state and the
//! middleware application manager into one receiver. The OddCI PNA runs
//! *on* this device; this module knows nothing about OddCI semantics.

use crate::compute::{ComputeModel, DeviceClass, UsageMode};
use crate::middleware::ApplicationManager;
use oddci_types::{ChannelId, DataSize, NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Fixed hardware characteristics of a receiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StbHardware {
    /// Main memory available to interactive applications.
    pub ram: DataSize,
    /// Non-volatile storage.
    pub flash: DataSize,
}

impl Default for StbHardware {
    fn default() -> Self {
        // The paper's test device: STi7109, 256 MB RAM, 32 MB flash.
        StbHardware {
            ram: DataSize::from_megabytes(256),
            flash: DataSize::from_megabytes(32),
        }
    }
}

/// Tuner state: which service the receiver is listening to, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunerState {
    /// Powered off / unplugged: unreachable.
    Off,
    /// Powered, tuned to `channel`.
    Tuned(ChannelId),
}

/// One DTV receiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetTopBox {
    /// Stable device identity (doubles as the PNA's node id).
    pub id: NodeId,
    /// Hardware inventory.
    pub hardware: StbHardware,
    /// Tuner state.
    pub tuner: TunerState,
    /// In-use vs standby (affects compute speed by the 1.65 factor).
    pub usage: UsageMode,
    /// The middleware application manager.
    pub apps: ApplicationManager,
}

impl SetTopBox {
    /// Creates a powered-off receiver with default hardware.
    pub fn new(id: NodeId) -> Self {
        SetTopBox {
            id,
            hardware: StbHardware::default(),
            tuner: TunerState::Off,
            usage: UsageMode::Standby,
            apps: ApplicationManager::new(),
        }
    }

    /// Powers the receiver on, tuned to `channel`, in the given usage mode.
    pub fn power_on(&mut self, channel: ChannelId, usage: UsageMode) {
        self.tuner = TunerState::Tuned(channel);
        self.usage = usage;
    }

    /// Powers the receiver off, destroying every running application.
    pub fn power_off(&mut self) {
        self.tuner = TunerState::Off;
        self.apps.power_off();
    }

    /// True when powered and tuned to `channel`.
    pub fn is_tuned_to(&self, channel: ChannelId) -> bool {
        self.tuner == TunerState::Tuned(channel)
    }

    /// True when powered on at all.
    pub fn is_on(&self) -> bool {
        !matches!(self.tuner, TunerState::Off)
    }

    /// Whether an image of `size` fits in memory next to the middleware
    /// (we reserve half the RAM for middleware + OS, matching the tight
    /// memory budget the paper's port had to live within).
    pub fn fits_in_memory(&self, size: DataSize) -> bool {
        size.bits() <= self.hardware.ram.bits() / 2
    }

    /// Execution time of a task with reference-PC cost `pc_time` on this
    /// box in its current usage mode.
    pub fn execution_time(&self, model: &ComputeModel, pc_time: SimDuration) -> SimDuration {
        model.from_pc_time(pc_time, DeviceClass::SetTopBox, self.usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_cycle() {
        let mut stb = SetTopBox::new(NodeId::new(1));
        assert!(!stb.is_on());
        stb.power_on(ChannelId::new(3), UsageMode::InUse);
        assert!(stb.is_on());
        assert!(stb.is_tuned_to(ChannelId::new(3)));
        assert!(!stb.is_tuned_to(ChannelId::new(4)));
        stb.power_off();
        assert!(!stb.is_on());
    }

    #[test]
    fn power_off_kills_apps() {
        use oddci_broadcast::ait::{Ait, AitEntry, AppControlCode};
        let mut stb = SetTopBox::new(NodeId::new(1));
        stb.power_on(ChannelId::new(1), UsageMode::Standby);
        let mut ait = Ait::new();
        ait.publish(vec![AitEntry {
            app_id: 1,
            name: "pna".into(),
            base_file: "pna.xlet".into(),
            control_code: AppControlCode::Autostart,
        }]);
        stb.apps.apply_ait(&ait);
        assert_eq!(stb.apps.running_count(), 1);
        stb.power_off();
        assert_eq!(stb.apps.running_count(), 0);
    }

    #[test]
    fn memory_budget() {
        let stb = SetTopBox::new(NodeId::new(1));
        assert!(stb.fits_in_memory(DataSize::from_megabytes(100)));
        assert!(stb.fits_in_memory(DataSize::from_megabytes(128)));
        assert!(!stb.fits_in_memory(DataSize::from_megabytes(129)));
    }

    #[test]
    fn execution_time_tracks_usage_mode() {
        let model = ComputeModel::paper();
        let mut stb = SetTopBox::new(NodeId::new(1));
        stb.power_on(ChannelId::new(1), UsageMode::Standby);
        let standby = stb.execution_time(&model, SimDuration::from_secs(1));
        stb.usage = UsageMode::InUse;
        let in_use = stb.execution_time(&model, SimDuration::from_secs(1));
        assert!((in_use.as_secs_f64() / standby.as_secs_f64() - 1.65).abs() < 1e-6);
    }

    #[test]
    fn default_hardware_matches_paper_device() {
        let hw = StbHardware::default();
        assert_eq!(hw.ram, DataSize::from_megabytes(256));
        assert_eq!(hw.flash, DataSize::from_megabytes(32));
    }
}
