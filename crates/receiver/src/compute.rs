//! Execution-time model calibrated with the paper's micro-benchmarks.
//!
//! §4.4 measured BLAST on a real STi7109 set-top box against a reference
//! PC (Pentium Dual Core 1.6 GHz) and found, with 90% confidence:
//!
//! * the STB is on average **20.6× slower** than the PC (±10%), and
//! * the STB **in use** (a TV channel tuned, middleware active) is on
//!   average **1.65× slower** than in **standby** (±17%).
//!
//! We read the 20.6 factor as PC → STB-in-use (the paper's "normal use"
//! mode is the one it discusses for volunteer-style harvesting), so
//! standby ≈ 20.6 / 1.65 ≈ 12.5× the PC time. Both constants are plain
//! fields, so experiments can re-pin them.
//!
//! The model converts a task's *reference time* (measured on one device
//! class) to any other class, with optional lognormal-ish jitter to mimic
//! the run-to-run variance visible in Table II.

use oddci_telemetry::{Phase, Telemetry};
use oddci_types::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which physical machine executes the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// The paper's reference PC (Pentium Dual Core 1.6 GHz, Debian Linux).
    ReferencePc,
    /// A DTV receiver (STi7109-class set-top box).
    SetTopBox,
}

/// Whether the set-top box is actively rendering TV or idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UsageMode {
    /// A TV channel is tuned; the interactive-application processor shares
    /// the box with the middleware ("normal use" in the paper).
    InUse,
    /// Middleware inactive; the application processor is all ours.
    Standby,
}

/// Calibrated slowdown model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// STB-in-use time divided by reference-PC time (paper: 20.6).
    pub stb_in_use_vs_pc: f64,
    /// STB-in-use time divided by STB-standby time (paper: 1.65).
    pub in_use_vs_standby: f64,
    /// Coefficient of variation of multiplicative jitter (0 = deterministic).
    pub jitter_cv: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            stb_in_use_vs_pc: 20.6,
            in_use_vs_standby: 1.65,
            jitter_cv: 0.0,
        }
    }
}

impl ComputeModel {
    /// A model with the paper's constants and no jitter.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Same constants plus multiplicative jitter with the given coefficient
    /// of variation.
    pub fn paper_with_jitter(jitter_cv: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter_cv),
            "jitter CV must be in [0,1)"
        );
        ComputeModel {
            jitter_cv,
            ..Self::default()
        }
    }

    /// Slowdown factor of `(class, mode)` relative to the reference PC.
    /// `mode` is ignored for the PC.
    pub fn factor_vs_pc(&self, class: DeviceClass, mode: UsageMode) -> f64 {
        match (class, mode) {
            (DeviceClass::ReferencePc, _) => 1.0,
            (DeviceClass::SetTopBox, UsageMode::InUse) => self.stb_in_use_vs_pc,
            (DeviceClass::SetTopBox, UsageMode::Standby) => {
                self.stb_in_use_vs_pc / self.in_use_vs_standby
            }
        }
    }

    /// Converts a reference-PC execution time to `(class, mode)`.
    pub fn from_pc_time(
        &self,
        pc_time: SimDuration,
        class: DeviceClass,
        mode: UsageMode,
    ) -> SimDuration {
        pc_time.mul_f64(self.factor_vs_pc(class, mode))
    }

    /// Converts a time measured on `(from_class, from_mode)` to
    /// `(to_class, to_mode)`.
    pub fn convert(
        &self,
        time: SimDuration,
        from: (DeviceClass, UsageMode),
        to: (DeviceClass, UsageMode),
    ) -> SimDuration {
        let f = self.factor_vs_pc(to.0, to.1) / self.factor_vs_pc(from.0, from.1);
        time.mul_f64(f)
    }

    /// Like [`from_pc_time`](Self::from_pc_time) but with multiplicative
    /// jitter drawn from `rng` (uniform in `1 ± jitter_cv·√3`, which has the
    /// requested coefficient of variation).
    pub fn sample_from_pc_time<R: Rng + ?Sized>(
        &self,
        pc_time: SimDuration,
        class: DeviceClass,
        mode: UsageMode,
        rng: &mut R,
    ) -> SimDuration {
        let base = self.from_pc_time(pc_time, class, mode);
        if self.jitter_cv == 0.0 {
            return base;
        }
        let half_width = self.jitter_cv * 3f64.sqrt();
        let m = 1.0 + rng.random_range(-half_width..half_width);
        base.mul_f64(m.max(0.05))
    }

    /// Like [`from_reference_stb`](Self::from_reference_stb) but with the
    /// model's multiplicative jitter drawn from `rng`.
    pub fn sample_from_reference_stb<R: Rng + ?Sized>(
        &self,
        stb_time: SimDuration,
        mode: UsageMode,
        rng: &mut R,
    ) -> SimDuration {
        let base = self.from_reference_stb(stb_time, mode);
        if self.jitter_cv == 0.0 {
            return base;
        }
        let half_width = self.jitter_cv * 3f64.sqrt();
        let m = 1.0 + rng.random_range(-half_width..half_width);
        base.mul_f64(m.max(0.05))
    }

    /// [`sample_from_reference_stb`](Self::sample_from_reference_stb) that
    /// also records the sampled kernel time into `tele`'s
    /// `receiver.kernel` histogram. The model itself carries no telemetry
    /// handle (it must stay `PartialEq + Serialize`), so observability is
    /// a call-site parameter.
    pub fn sample_instrumented<R: Rng + ?Sized>(
        &self,
        stb_time: SimDuration,
        mode: UsageMode,
        rng: &mut R,
        tele: &Telemetry,
    ) -> SimDuration {
        let dur = self.sample_from_reference_stb(stb_time, mode, rng);
        tele.duration(dur.as_secs_f64(), Phase::Kernel);
        dur
    }

    /// The paper's model expresses task cost `t.p` on a **reference STB**.
    /// This converts such a cost to the mode actually in effect, taking the
    /// reference to be a standby STB.
    pub fn from_reference_stb(&self, stb_time: SimDuration, mode: UsageMode) -> SimDuration {
        self.convert(
            stb_time,
            (DeviceClass::SetTopBox, UsageMode::Standby),
            (DeviceClass::SetTopBox, mode),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_constants() {
        let m = ComputeModel::paper();
        assert_eq!(
            m.factor_vs_pc(DeviceClass::ReferencePc, UsageMode::InUse),
            1.0
        );
        assert_eq!(
            m.factor_vs_pc(DeviceClass::SetTopBox, UsageMode::InUse),
            20.6
        );
        let standby = m.factor_vs_pc(DeviceClass::SetTopBox, UsageMode::Standby);
        assert!((standby - 20.6 / 1.65).abs() < 1e-12);
    }

    #[test]
    fn pc_second_becomes_20_6_stb_seconds() {
        let m = ComputeModel::paper();
        let t = m.from_pc_time(
            SimDuration::from_secs(1),
            DeviceClass::SetTopBox,
            UsageMode::InUse,
        );
        assert!((t.as_secs_f64() - 20.6).abs() < 1e-6);
    }

    #[test]
    fn in_use_standby_ratio_preserved() {
        let m = ComputeModel::paper();
        let pc = SimDuration::from_secs(10);
        let in_use = m.from_pc_time(pc, DeviceClass::SetTopBox, UsageMode::InUse);
        let standby = m.from_pc_time(pc, DeviceClass::SetTopBox, UsageMode::Standby);
        assert!((in_use.as_secs_f64() / standby.as_secs_f64() - 1.65).abs() < 1e-6);
    }

    #[test]
    fn convert_round_trips() {
        let m = ComputeModel::paper();
        let orig = SimDuration::from_secs(100);
        let there = m.convert(
            orig,
            (DeviceClass::ReferencePc, UsageMode::InUse),
            (DeviceClass::SetTopBox, UsageMode::Standby),
        );
        let back = m.convert(
            there,
            (DeviceClass::SetTopBox, UsageMode::Standby),
            (DeviceClass::ReferencePc, UsageMode::InUse),
        );
        assert!(back.as_micros().abs_diff(orig.as_micros()) <= 1);
    }

    #[test]
    fn reference_stb_is_standby() {
        let m = ComputeModel::paper();
        let p = SimDuration::from_secs(60);
        assert_eq!(m.from_reference_stb(p, UsageMode::Standby), p);
        let in_use = m.from_reference_stb(p, UsageMode::InUse);
        assert!((in_use.as_secs_f64() - 99.0).abs() < 1e-6); // 60 * 1.65
    }

    #[test]
    fn jitter_is_centered_and_bounded() {
        let m = ComputeModel::paper_with_jitter(0.1);
        let mut rng = SmallRng::seed_from_u64(1);
        let pc = SimDuration::from_secs(1);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| {
                m.sample_from_pc_time(pc, DeviceClass::SetTopBox, UsageMode::InUse, &mut rng)
                    .as_secs_f64()
            })
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 20.6).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = ComputeModel::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        let a = m.sample_from_pc_time(
            SimDuration::from_secs(2),
            DeviceClass::SetTopBox,
            UsageMode::Standby,
            &mut rng,
        );
        let b = m.from_pc_time(
            SimDuration::from_secs(2),
            DeviceClass::SetTopBox,
            UsageMode::Standby,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "jitter CV")]
    fn invalid_jitter_rejected() {
        let _ = ComputeModel::paper_with_jitter(1.5);
    }
}
