//! The DTV middleware: Xlet lifecycle and the application manager.
//!
//! Implements the state machine of Figure 4 of the paper (the JavaTV Xlet
//! lifecycle): an Xlet is *Loaded*, initialized to *Paused*, moved to
//! *Started*, may bounce between *Paused*/*Started*, and ends *Destroyed* —
//! after which it can never be restarted. The
//! [`ApplicationManager`] owns all Xlets on one receiver and reacts to AIT
//! signalling (AUTOSTART launches, KILL/DESTROY teardowns).

use oddci_broadcast::ait::{Ait, AppControlCode};
use oddci_types::{OddciError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The four JavaTV Xlet lifecycle states (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum XletState {
    /// Main class loaded, default constructor run.
    Loaded,
    /// Initialized (`initXlet`) and ready to start, or paused mid-run.
    Paused,
    /// Actively executing (`startXlet`).
    Started,
    /// Terminal state (`destroyXlet`); resources freed, cannot restart.
    Destroyed,
}

/// One application instance managed by the middleware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Xlet {
    /// AIT application id this Xlet was signalled under.
    pub app_id: u32,
    /// Application name (diagnostic only).
    pub name: String,
    /// Current lifecycle state.
    state: XletState,
    /// Number of `pauseXlet`/`startXlet` round trips (diagnostic).
    pub pause_cycles: u32,
}

impl Xlet {
    /// Loads the Xlet: runs the default constructor (state *Loaded*).
    pub fn load(app_id: u32, name: impl Into<String>) -> Self {
        Xlet {
            app_id,
            name: name.into(),
            state: XletState::Loaded,
            pause_cycles: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> XletState {
        self.state
    }

    /// `initXlet()`: Loaded → Paused.
    pub fn init(&mut self) -> Result<()> {
        match self.state {
            XletState::Loaded => {
                self.state = XletState::Paused;
                Ok(())
            }
            s => Err(invalid("initXlet", s)),
        }
    }

    /// `startXlet()`: Paused → Started.
    pub fn start(&mut self) -> Result<()> {
        match self.state {
            XletState::Paused => {
                self.state = XletState::Started;
                Ok(())
            }
            s => Err(invalid("startXlet", s)),
        }
    }

    /// `pauseXlet()`: Started → Paused.
    pub fn pause(&mut self) -> Result<()> {
        match self.state {
            XletState::Started => {
                self.state = XletState::Paused;
                self.pause_cycles += 1;
                Ok(())
            }
            s => Err(invalid("pauseXlet", s)),
        }
    }

    /// `destroyXlet()`: any non-destroyed state → Destroyed.
    pub fn destroy(&mut self) -> Result<()> {
        match self.state {
            XletState::Destroyed => Err(invalid("destroyXlet", XletState::Destroyed)),
            _ => {
                self.state = XletState::Destroyed;
                Ok(())
            }
        }
    }

    /// True when the Xlet is actively executing.
    pub fn is_running(&self) -> bool {
        self.state == XletState::Started
    }
}

fn invalid(operation: &'static str, state: XletState) -> OddciError {
    OddciError::InvalidState {
        operation,
        state: format!("{state:?}"),
    }
}

/// The middleware component that owns every Xlet on one receiver and
/// applies AIT signalling.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ApplicationManager {
    xlets: BTreeMap<u32, Xlet>,
    /// Last AIT version applied, to make signalling idempotent.
    last_ait_version: Option<u32>,
}

impl ApplicationManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        ApplicationManager::default()
    }

    /// Applies an AIT snapshot: AUTOSTART entries not yet running are
    /// loaded/initialized/started; KILL/DESTROY entries are destroyed.
    /// Returns the app ids that were **newly started** by this call.
    ///
    /// Reapplying the same AIT version is a no-op (receivers see the same
    /// table on every carousel pass).
    pub fn apply_ait(&mut self, ait: &Ait) -> Vec<u32> {
        if self.last_ait_version == Some(ait.version) {
            return Vec::new();
        }
        self.last_ait_version = Some(ait.version);

        let mut started = Vec::new();
        for entry in &ait.entries {
            match entry.control_code {
                AppControlCode::Autostart => {
                    let needs_start = match self.xlets.get(&entry.app_id) {
                        Some(x) => x.state() == XletState::Destroyed,
                        None => true,
                    };
                    if needs_start {
                        let mut xlet = Xlet::load(entry.app_id, entry.name.clone());
                        xlet.init().expect("fresh Xlet init");
                        xlet.start().expect("initialized Xlet start");
                        self.xlets.insert(entry.app_id, xlet);
                        started.push(entry.app_id);
                    }
                }
                AppControlCode::Kill | AppControlCode::Destroy => {
                    if let Some(x) = self.xlets.get_mut(&entry.app_id) {
                        let _ = x.destroy();
                    }
                }
                AppControlCode::Present => {}
            }
        }
        started
    }

    /// The Xlet for `app_id`, if loaded.
    pub fn xlet(&self, app_id: u32) -> Option<&Xlet> {
        self.xlets.get(&app_id)
    }

    /// Mutable access (the PNA drives its own Xlet through this).
    pub fn xlet_mut(&mut self, app_id: u32) -> Option<&mut Xlet> {
        self.xlets.get_mut(&app_id)
    }

    /// Number of Xlets currently in the *Started* state.
    pub fn running_count(&self) -> usize {
        self.xlets.values().filter(|x| x.is_running()).count()
    }

    /// Destroys every Xlet — what happens when the receiver powers off.
    pub fn power_off(&mut self) {
        for x in self.xlets.values_mut() {
            let _ = x.destroy();
        }
        self.xlets.clear();
        self.last_ait_version = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_broadcast::ait::AitEntry;

    #[test]
    fn full_lifecycle_happy_path() {
        let mut x = Xlet::load(1, "pna");
        assert_eq!(x.state(), XletState::Loaded);
        x.init().unwrap();
        assert_eq!(x.state(), XletState::Paused);
        x.start().unwrap();
        assert_eq!(x.state(), XletState::Started);
        x.pause().unwrap();
        assert_eq!(x.state(), XletState::Paused);
        x.start().unwrap();
        x.destroy().unwrap();
        assert_eq!(x.state(), XletState::Destroyed);
        assert_eq!(x.pause_cycles, 1);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut x = Xlet::load(1, "pna");
        assert!(x.start().is_err(), "cannot start a merely Loaded xlet");
        assert!(x.pause().is_err(), "cannot pause a Loaded xlet");
        x.init().unwrap();
        assert!(x.init().is_err(), "double init");
        x.destroy().unwrap();
        assert!(x.start().is_err(), "destroyed is terminal");
        assert!(x.init().is_err());
        assert!(x.destroy().is_err(), "double destroy");
    }

    fn autostart_ait(version: u32) -> Ait {
        let mut ait = Ait::new();
        for _ in 0..version {
            ait.publish(vec![AitEntry {
                app_id: 7,
                name: "pna".into(),
                base_file: "pna.xlet".into(),
                control_code: AppControlCode::Autostart,
            }]);
        }
        ait
    }

    #[test]
    fn autostart_launches_once_per_version() {
        let mut am = ApplicationManager::new();
        let ait = autostart_ait(1);
        assert_eq!(am.apply_ait(&ait), vec![7]);
        assert_eq!(am.running_count(), 1);
        // Same version seen again on the next carousel pass: no-op.
        assert!(am.apply_ait(&ait).is_empty());
        assert_eq!(am.running_count(), 1);
    }

    #[test]
    fn new_version_does_not_restart_running_xlet() {
        let mut am = ApplicationManager::new();
        am.apply_ait(&autostart_ait(1));
        // Version 2 with the same AUTOSTART entry: already running, no restart.
        assert!(am.apply_ait(&autostart_ait(2)).is_empty());
        assert_eq!(am.running_count(), 1);
    }

    #[test]
    fn kill_signal_destroys() {
        let mut am = ApplicationManager::new();
        am.apply_ait(&autostart_ait(1));
        let mut ait = autostart_ait(1);
        ait.publish(vec![AitEntry {
            app_id: 7,
            name: "pna".into(),
            base_file: "pna.xlet".into(),
            control_code: AppControlCode::Kill,
        }]);
        am.apply_ait(&ait);
        assert_eq!(am.running_count(), 0);
        assert_eq!(am.xlet(7).unwrap().state(), XletState::Destroyed);
    }

    #[test]
    fn destroyed_xlet_is_relaunched_by_later_autostart() {
        let mut am = ApplicationManager::new();
        am.apply_ait(&autostart_ait(1));
        am.xlet_mut(7).unwrap().destroy().unwrap();
        // A NEW AIT version re-triggers the trigger application.
        assert_eq!(am.apply_ait(&autostart_ait(2)), vec![7]);
        assert_eq!(am.running_count(), 1);
    }

    #[test]
    fn power_off_clears_everything() {
        let mut am = ApplicationManager::new();
        am.apply_ait(&autostart_ait(1));
        am.power_off();
        assert_eq!(am.running_count(), 0);
        assert!(am.xlet(7).is_none());
        // After power-on the same AIT version autostart fires again.
        assert_eq!(am.apply_ait(&autostart_ait(1)), vec![7]);
    }

    #[test]
    fn present_entries_are_not_started() {
        let mut am = ApplicationManager::new();
        let mut ait = Ait::new();
        ait.publish(vec![AitEntry {
            app_id: 9,
            name: "epg".into(),
            base_file: "epg.xlet".into(),
            control_code: AppControlCode::Present,
        }]);
        assert!(am.apply_ait(&ait).is_empty());
        assert!(am.xlet(9).is_none());
    }
}
