#![forbid(unsafe_code)]

//! The set-top-box (DTV receiver) substrate.
//!
//! §4.1 of the paper: *"The DTV receiver can be seen as a computer adapted
//! for the needs of the television environment"* — several processors (one
//! dedicated to interactive applications), RAM, flash, a network adapter
//! and a middleware that abstracts the hardware and runs Java **Xlets**.
//!
//! This crate models the pieces of that stack the OddCI architecture
//! touches:
//!
//! * [`middleware`] — the application manager and the JavaTV Xlet lifecycle
//!   (*Loaded / Paused / Started / Destroyed*, Figure 4 of the paper),
//!   including AUTOSTART trigger handling from the AIT.
//! * [`stb`] — the receiver device itself: tuner, power state, hardware
//!   inventory, and the hosted application manager.
//! * [`dve`] — the *Device Virtualized Environment* a PNA creates to run a
//!   user application image in isolation (§3.2).
//! * [`compute`] — the execution-time model calibrated with the paper's
//!   Table II/III micro-benchmarks (STB ≈ 20.6× slower than the reference
//!   PC; in-use ≈ 1.65× slower than standby).
//!
//! # Example
//!
//! ```
//! use oddci_receiver::{ComputeModel, DeviceClass, UsageMode};
//!
//! let model = ComputeModel::paper();
//! // Table II: an in-use STB runs the reference workload ≈20.6× slower
//! // than the reference PC; standby is 1.65× faster than in-use.
//! let in_use = model.factor_vs_pc(DeviceClass::SetTopBox, UsageMode::InUse);
//! let standby = model.factor_vs_pc(DeviceClass::SetTopBox, UsageMode::Standby);
//! assert!(standby < in_use);
//! assert!((in_use / standby - 1.65).abs() < 1e-9);
//! ```

pub mod compute;
pub mod dve;
pub mod middleware;
pub mod stb;

pub use compute::{ComputeModel, DeviceClass, UsageMode};
pub use dve::{Dve, DveState};
pub use middleware::{ApplicationManager, Xlet, XletState};
pub use stb::{SetTopBox, StbHardware, TunerState};
