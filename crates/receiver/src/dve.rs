//! The Device Virtualized Environment (DVE).
//!
//! §3.2: upon accepting a wakeup message, the PNA *"creates a DVE for
//! loading and executing the user's application present in the message"*.
//! The DVE is the isolation boundary between the resident PNA and the
//! transient user image: it owns the image, enforces a memory budget, and
//! can be destroyed at any moment (reset message, power-off) without
//! affecting the PNA itself.

use oddci_types::{DataSize, ImageId, InstanceId, OddciError, Result};
use serde::{Deserialize, Serialize};

/// Lifecycle of a DVE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DveState {
    /// Created, image not yet loaded (acquisition from the carousel is
    /// still in flight).
    Loading,
    /// Image loaded and executing.
    Running,
    /// Torn down; terminal.
    Destroyed,
}

/// A sandbox executing one application image on behalf of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dve {
    /// Instance this DVE belongs to.
    pub instance: InstanceId,
    /// Image the DVE runs.
    pub image: ImageId,
    /// Size of the loaded image (counted against device memory).
    pub image_size: DataSize,
    state: DveState,
    /// Tasks completed inside this DVE (diagnostic).
    pub tasks_completed: u64,
}

impl Dve {
    /// Creates a DVE in the `Loading` state.
    pub fn create(instance: InstanceId, image: ImageId, image_size: DataSize) -> Self {
        Dve {
            instance,
            image,
            image_size,
            state: DveState::Loading,
            tasks_completed: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> DveState {
        self.state
    }

    /// Marks the image as fully acquired and starts execution.
    pub fn image_loaded(&mut self) -> Result<()> {
        match self.state {
            DveState::Loading => {
                self.state = DveState::Running;
                Ok(())
            }
            s => Err(OddciError::InvalidState {
                operation: "image_loaded",
                state: format!("{s:?}"),
            }),
        }
    }

    /// Records a completed task.
    pub fn task_done(&mut self) -> Result<()> {
        match self.state {
            DveState::Running => {
                self.tasks_completed += 1;
                Ok(())
            }
            s => Err(OddciError::InvalidState {
                operation: "task_done",
                state: format!("{s:?}"),
            }),
        }
    }

    /// Tears the DVE down (reset message, instance dismantle, power-off).
    /// Idempotent: destroying twice is allowed and does nothing the second
    /// time, because resets can race power-offs.
    pub fn destroy(&mut self) {
        self.state = DveState::Destroyed;
    }

    /// True while the DVE can accept work.
    pub fn is_running(&self) -> bool {
        self.state == DveState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dve() -> Dve {
        Dve::create(
            InstanceId::new(1),
            ImageId::new(9),
            DataSize::from_megabytes(10),
        )
    }

    #[test]
    fn lifecycle() {
        let mut d = dve();
        assert_eq!(d.state(), DveState::Loading);
        assert!(!d.is_running());
        d.image_loaded().unwrap();
        assert!(d.is_running());
        d.task_done().unwrap();
        d.task_done().unwrap();
        assert_eq!(d.tasks_completed, 2);
        d.destroy();
        assert_eq!(d.state(), DveState::Destroyed);
    }

    #[test]
    fn cannot_load_twice() {
        let mut d = dve();
        d.image_loaded().unwrap();
        assert!(d.image_loaded().is_err());
    }

    #[test]
    fn cannot_work_before_load_or_after_destroy() {
        let mut d = dve();
        assert!(d.task_done().is_err());
        d.image_loaded().unwrap();
        d.destroy();
        assert!(d.task_done().is_err());
    }

    #[test]
    fn destroy_is_idempotent() {
        let mut d = dve();
        d.destroy();
        d.destroy();
        assert_eq!(d.state(), DveState::Destroyed);
    }

    #[test]
    fn destroy_while_loading_is_allowed() {
        let mut d = dve();
        d.destroy();
        assert!(
            d.image_loaded().is_err(),
            "cannot finish loading a destroyed DVE"
        );
    }
}
