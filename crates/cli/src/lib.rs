#![forbid(unsafe_code)]

//! Library behind the `oddci` command-line tool: argument parsing and the
//! subcommand implementations, factored out of `main` so they are unit- and
//! integration-testable without spawning processes.
//!
//! Subcommands:
//!
//! * `simulate` — run a full OddCI-DTV world for one job and report.
//! * `chaos` — the same world under a deterministic fault-injection plan.
//! * `trace` — record a scenario's telemetry and export a Chrome trace.
//! * `wakeup` — evaluate the §5.1 wakeup envelope for an image/β pair.
//! * `efficiency` — evaluate equations (1)/(2) for a scenario.
//! * `live` — run the thread-based live demo with real alignment work.
//! * `headend` — serve the live plane over real TCP sockets for PNA
//!   processes to join.
//! * `pna` — one Processing Node Agent process connecting to a headend.
//! * `failover` — kill a snapshotting headend mid-job and prove a standby
//!   adopts its state without losing a task.
//! * `autoscale` — the elastic-sizing drill: the desired-state reconciler
//!   scales a live instance up and back down against a queue-depth SLO
//!   while absorbing a spot-like airtime revocation.
//! * `check` — the concurrency gate: workspace lint plus the bounded
//!   schedule explorer over the scaled-down headend scenarios.
//!
//! The argument syntax is deliberately simple (`--key value` pairs after a
//! subcommand); parsing is hand-rolled to keep the dependency set at the
//! approved workspace list.
//!
//! # Example
//!
//! ```
//! // The same entry point the binary uses, minus the process:
//! let argv: Vec<String> = ["wakeup", "--image-mb", "10", "--beta-mbps", "2"]
//!     .iter()
//!     .map(|s| s.to_string())
//!     .collect();
//! let out = oddci_cli::run(&argv).expect("valid arguments");
//! assert!(out.contains("62.9"), "mean wakeup of 10 MB @ 2 Mbps: {out}");
//! ```

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};

/// Entry point shared by `main` and the tests: parses `argv[1..]`, runs the
/// subcommand, returns the rendered output or a usage error.
pub fn run(argv: &[String]) -> Result<String, String> {
    // `trace` accepts positionals: `oddci trace convert <file>` is the
    // offline binary-to-text converter, and `oddci trace small --out
    // t.json` names a scenario; rewrite both into `--key value` form for
    // the option parser.
    let rewritten: Vec<String>;
    let argv = if argv.first().map(String::as_str) == Some("trace")
        && argv.get(1).map(String::as_str) == Some("convert")
    {
        let mut v = vec!["trace-convert".to_string()];
        match argv.get(2) {
            Some(file) if !file.starts_with("--") => {
                v.extend(["--in".to_string(), file.clone()]);
                v.extend(argv[3..].iter().cloned());
            }
            _ => v.extend(argv[2..].iter().cloned()),
        }
        rewritten = v;
        &rewritten[..]
    } else if argv.first().map(String::as_str) == Some("trace")
        && argv.get(1).is_some_and(|a| !a.starts_with("--"))
    {
        let mut v = vec![argv[0].clone(), "--scenario".to_string(), argv[1].clone()];
        v.extend(argv[2..].iter().cloned());
        rewritten = v;
        &rewritten[..]
    } else {
        argv
    };
    let parsed = args::Parsed::parse(argv).map_err(|e| format!("{e}\n\n{}", usage()))?;
    match parsed.command.as_str() {
        "simulate" => commands::simulate(&parsed).map_err(|e| e.to_string()),
        "chaos" => commands::chaos(&parsed).map_err(|e| e.to_string()),
        "trace" => commands::trace(&parsed).map_err(|e| e.to_string()),
        "trace-convert" => commands::trace_convert(&parsed).map_err(|e| e.to_string()),
        "top" => commands::top(&parsed).map_err(|e| e.to_string()),
        "wakeup" => commands::wakeup(&parsed).map_err(|e| e.to_string()),
        "efficiency" => commands::efficiency(&parsed).map_err(|e| e.to_string()),
        "live" => commands::live(&parsed).map_err(|e| e.to_string()),
        "soak" => commands::soak(&parsed).map_err(|e| e.to_string()),
        "headend" => commands::headend(&parsed).map_err(|e| e.to_string()),
        "pna" => commands::pna(&parsed).map_err(|e| e.to_string()),
        "failover" => commands::failover(&parsed).map_err(|e| e.to_string()),
        "autoscale" => commands::autoscale(&parsed).map_err(|e| e.to_string()),
        "check" => commands::check(&parsed).map_err(|e| e.to_string()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "\
oddci — On-Demand Distributed Computing Infrastructure (SC/MTAGS 2009 reproduction)

USAGE:
    oddci <COMMAND> [--key value ...]

COMMANDS:
    simulate    run a full OddCI-DTV simulation for one job
                  --nodes N        channel audience        [1000]
                  --target N       instance size           [100]
                  --tasks N        job task count          [500]
                  --cost-secs S    task cost (ref. STB)    [60]
                  --image-mb M     application image MB    [4]
                  --seed S         simulation seed         [42]
                  --churn ON:OFF   mean on/off minutes     [off]
                  --json           machine-readable output
    chaos       simulate one job under deterministic fault injection
                  --nodes N        channel audience        [500]
                  --target N       instance size           [100]
                  --tasks N        job task count          [300]
                  --cost-secs S    task cost (ref. STB)    [30]
                  --seed S         simulation seed         [42]
                  --faults SPEC    class=rate[:magnitude][@start..end],...
                                   (window in seconds; default: standard mix)
                  --intensity F    scale every rate by F   [1.0]
                  --json           machine-readable output
    trace       run one scenario with event recording and export a Chrome
                trace (chrome://tracing / Perfetto), plus a per-phase table
                  [scenario]       small | standard | chaos [small]
                  --out PATH       trace file              [results/trace.json]
                  --seed S         simulation seed         [42]
                  --stream PATH    also stream events to PATH (JSONL) and a
                                   derived .stream.json Chrome trace during
                                   the run; the wakeup check then uses the
                                   streamed artifact instead of the ring
                  --binary         stream the compact binary format instead
                                   (one .trace.bin file, per-lane writers;
                                   convert offline with `trace convert`)
                  --lane-capacity N  events buffered per sink lane [65536]
    trace convert  re-emit JSONL + Chrome text from a binary trace
                  [file]           input .trace.bin          [required]
                  --jsonl PATH     JSONL output      [input with .jsonl]
                  --chrome PATH    Chrome output  [jsonl with .stream.json]
    wakeup      evaluate the wakeup envelope W = 1.5·I/β
                  --image-mb M     image size MB           [8]
                  --beta-mbps B    spare capacity Mbps     [1]
    efficiency  evaluate equations (1) and (2)
                  --phi F          suitability             [1000]
                  --ratio R        n/N                     [100]
                  --nodes N        instance size N         [1000]
    live        run the live thread demo (real alignment work)
                  --nodes N        receiver threads        [4]
                  --queries N      alignment queries       [8]
                  --target N       instance size           [3]
    soak        stress the live headend and report task throughput
                  --shards N       controller shards, 1..=64   [4]
                  --dispatch N     dispatch workers, 1..=64    [min(shards,4)]
                  --batch N        tasks per fetch, 1..=1024   [16]
                  --nodes N        receiver threads            [8]
                  --queries N      tasks in the soak job       [512]
                  --target N       instance size               [nodes]
                  --seed S         run seed                    [42]
                  --single-loop    use the pre-sharding baseline headend
                  --trace-out PATH stream a JSONL + Chrome trace of the run
                                   (per-shard sink lanes; drops are counted,
                                   never blocking the headend)
                  --binary         stream --trace-out in the binary format
                  --lane-capacity N  events buffered per sink lane [65536]
                  --json           machine-readable output
    headend     serve the live plane over TCP for `oddci pna` processes
                (runs one alignment job once the instance fills, then
                broadcasts shutdown to every connected PNA)
                  --listen ADDR    bind address (HOST:PORT)    [required]
                  --pnas N         expected PNA processes      [3]
                  --queries N      alignment queries           [8]
                  --target N       instance size               [min(pnas,3)]
                  --shards N       controller shards           [2]
                  --dispatch N     dispatch workers            [2]
                  --batch N        tasks per fetch             [8]
                  --db-len N       database bytes in the image [20000]
                  --seed S         run seed                    [42]
                  --timeout S      job deadline, seconds       [120]
                  --metrics-out PATH  rewrite a Prometheus text snapshot
                                      of the metrics registry on an interval
                  --metrics-interval-ms M  snapshot period     [1000]
                  --snapshot-dir PATH  write durability snapshots
                                       (headend.snap, atomic) here
                  --snapshot-interval-ms M  snapshot cadence   [500]
                  --standby PATH   adopt the snapshot in PATH instead of
                                   starting fresh: rebind the dead
                                   primary's address at a bumped fencing
                                   epoch and finish its in-flight jobs
                  --min-instances N  enable elastic sizing: floor    [1]
                  --max-instances N  elastic ceiling             [pnas]
                  --slo-queue-depth N  queued tasks per member the
                                       reconciler sizes toward      [4]
                  --cooldown-ms M  min gap between scaling actions
                                   (replacements bypass it)      [2000]
                  --json           machine-readable output
    pna         one Processing Node Agent: connect to a headend, boot from
                the streamed wakeup image, work until shutdown
                  --connect ADDR   headend address (HOST:PORT) [required]
                  --seed S         node seed                   [7]
                  --heartbeat-ms M heartbeat interval          [150]
                  --connect-timeout S  dial deadline, seconds  [10]
                  --reconnect-ms M survive a dead connection: keep
                                   redialing for M ms per outage, resuming
                                   this node identity at whatever headend
                                   answers (epoch-fenced)      [0 = off]
                  --json           machine-readable output
    failover    durability drill: snapshotting headend + reconnecting
                PNAs; kill the primary at the fault plan's first
                headend-crash opportunity, adopt from the snapshot on a
                standby, prove zero tasks lost
                  --listen ADDR    bind address (HOST:PORT) [127.0.0.1:0]
                  --pnas N         in-process PNA threads      [3]
                  --queries N      alignment queries           [64]
                  --target N       instance size               [min(pnas,3)]
                  --seed S         run seed                    [42]
                  --db-len N       database bytes in the image [200000]
                  --faults SPEC    must include a headend-crash window
                                   [headend-crash=1.0@0.5..30]
                  --snapshot-dir PATH  snapshot directory      [temp dir]
                  --snapshot-interval-ms M  snapshot cadence   [50]
                  --timeout S      overall deadline, seconds   [60]
                  --json           machine-readable output
    autoscale   elastic-sizing drill: a sharded headend under the
                desired-state reconciler, submitted at the minimum
                instance size; the queue-depth SLO scales it up, the
                draining backlog scales it down, and a spot-like
                airtime revocation mid-job is absorbed as a
                cooldown-bypassing replacement; fails unless >=1
                scale-up and >=1 scale-down land with zero task loss
                  --listen ADDR    bind address (HOST:PORT) [127.0.0.1:0]
                  --pnas N         in-process PNA threads      [6]
                  --queries N      alignment queries           [64]
                  --seed S         run seed                    [42]
                  --db-len N       database bytes in the image [800000]
                  --min-instances N  reconciler floor          [2]
                  --max-instances N  reconciler ceiling        [pnas]
                  --slo-queue-depth N  queued tasks per member [8]
                  --cooldown-ms M  gap between scaling actions [400]
                  --reconcile-ms M reconciler tick period      [25]
                  --faults SPEC    fault plan
                                   [airtime-revoked=1.0@1.2..1.5]
                  --timeout S      overall deadline, seconds   [60]
                  --json           machine-readable output
    top         poll a running socket headend's live metrics plane
                (counters/gauges/histograms with deltas and rates, plus
                per-connection wire counters; no node identity consumed)
                  --connect ADDR   headend address (HOST:PORT) [required]
                  --interval-ms M  poll period                 [1000]
                  --count N        polls before exiting        [0 = forever]
                  --connect-timeout S  dial deadline, seconds  [10]
                  --json           machine-readable output (last poll)
    check       concurrency gate: workspace lint + bounded model checking
                of the headend protocol scenarios (exit nonzero on any
                lint finding, clean-scenario failure, or missed seeded bug)
                  --seed S         scheduler seed              [11]
                  --schedules N    interleavings per scenario  [400]
                  --scenario NAME  model just this scenario
                  --replay SCHED   re-run one pinned interleaving
                                   (requires --scenario; schedules print
                                   as s<seed>:t0.t1.…)
                  --skip-lint      model checking only
                  --list           list the model scenarios
    help        show this message
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_works() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&argv(&["--help"])).is_ok());
    }

    #[test]
    fn unknown_subcommand_errors_with_usage() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn empty_argv_errors() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn wakeup_evaluates() {
        let out = run(&argv(&["wakeup", "--image-mb", "8", "--beta-mbps", "1"])).unwrap();
        assert!(out.contains("mean"), "{out}");
        assert!(out.contains("100.7"), "8MB@1Mbps mean is 100.66s: {out}");
    }

    #[test]
    fn efficiency_evaluates() {
        let out = run(&argv(&["efficiency", "--phi", "1000", "--ratio", "100"])).unwrap();
        assert!(out.contains("efficiency"), "{out}");
    }

    #[test]
    fn simulate_small_world() {
        let out = run(&argv(&[
            "simulate",
            "--nodes",
            "100",
            "--target",
            "30",
            "--tasks",
            "60",
            "--cost-secs",
            "10",
            "--image-mb",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("60 tasks"), "{out}");
    }

    #[test]
    fn chaos_runs_and_reports_faults() {
        let out = run(&argv(&[
            "chaos",
            "--nodes",
            "100",
            "--target",
            "30",
            "--tasks",
            "60",
            "--cost-secs",
            "10",
            "--faults",
            "heartbeat-drop=0.2,direct-loss=0.1:20",
        ]))
        .unwrap();
        assert!(out.contains("completed         : 60 tasks"), "{out}");
        assert!(out.contains("injected faults"), "{out}");
    }

    #[test]
    fn chaos_json_counts_all_tasks() {
        let out = run(&argv(&[
            "chaos",
            "--nodes",
            "80",
            "--target",
            "20",
            "--tasks",
            "40",
            "--cost-secs",
            "5",
            "--intensity",
            "0.5",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["tasks_completed"], 40);
    }

    #[test]
    fn chaos_rejects_bad_plan() {
        let err = run(&argv(&["chaos", "--faults", "not-a-class=0.5"])).unwrap_err();
        assert!(err.contains("not-a-class"), "{err}");
    }

    #[test]
    fn chaos_accepts_windowed_faults() {
        let out = run(&argv(&[
            "chaos",
            "--nodes",
            "80",
            "--target",
            "20",
            "--tasks",
            "40",
            "--cost-secs",
            "5",
            "--faults",
            "heartbeat-drop=0.3@0..600,direct-loss=0.1:20@120..900",
        ]))
        .unwrap();
        assert!(out.contains("completed         : 40 tasks"), "{out}");
        let err = run(&argv(&["chaos", "--faults", "heartbeat-drop=0.3@600"])).unwrap_err();
        assert!(err.contains("window"), "{err}");
    }

    #[test]
    fn trace_writes_chrome_trace_and_breakdown() {
        let dir = std::env::temp_dir().join("oddci-cli-trace-test");
        let path = dir.join("trace.json");
        let out = run(&argv(&["trace", "small", "--out", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("wakeup (ring): measured"), "{out}");
        assert!(out.contains("dve.boot"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_stream_writes_artifacts_and_recomputes_wakeup() {
        let dir = std::env::temp_dir().join("oddci-cli-stream-test");
        let out_path = dir.join("trace.json");
        let stream_path = dir.join("run.trace.jsonl");
        let out = run(&argv(&[
            "trace",
            "small",
            "--out",
            out_path.to_str().unwrap(),
            "--stream",
            stream_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wakeup (streamed trace): measured"), "{out}");
        assert!(out.contains("streamed   :"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");
        // JSONL artifact: valid header + parseable events.
        let text = std::fs::read_to_string(&stream_path).unwrap();
        let (header, events) =
            oddci_telemetry::sink::read_jsonl_events(&text).expect("valid stream");
        assert_eq!(header.clock, "us");
        assert!(!events.is_empty());
        // Companion Chrome artifact parses as a trace document.
        let chrome = std::fs::read_to_string(dir.join("run.trace.stream.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&chrome).expect("valid stream doc");
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
        assert!(v["otherData"]["oddci_stream"].as_str().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_binary_stream_converts_losslessly() {
        let dir = std::env::temp_dir().join("oddci-cli-binary-stream-test");
        let out_path = dir.join("trace.json");
        let bin_path = dir.join("run.trace.bin");
        let out = run(&argv(&[
            "trace",
            "small",
            "--out",
            out_path.to_str().unwrap(),
            "--stream",
            bin_path.to_str().unwrap(),
            "--binary",
            "--lane-capacity",
            "131072",
        ]))
        .unwrap();
        // The wakeup check recomputes from the binary artifact directly.
        assert!(out.contains("wakeup (streamed trace): measured"), "{out}");
        assert!(out.contains("0 dropped (0.0%)"), "{out}");
        // Offline conversion re-emits both text artifacts with default
        // derived paths.
        let converted = run(&argv(&["trace", "convert", bin_path.to_str().unwrap()])).unwrap();
        assert!(converted.contains("converted"), "{converted}");
        let text = std::fs::read_to_string(dir.join("run.trace.jsonl")).unwrap();
        let (header, events) =
            oddci_telemetry::sink::read_jsonl_events(&text).expect("valid converted stream");
        assert_eq!(header.clock, "us");
        assert!(!events.is_empty());
        assert!(
            header
                .meta
                .iter()
                .any(|(k, v)| k == "converted_from" && v == "binary"),
            "{header:?}"
        );
        let chrome = std::fs::read_to_string(dir.join("run.trace.stream.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&chrome).expect("valid chrome doc");
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_convert_requires_an_input() {
        let err = run(&argv(&["trace", "convert"])).unwrap_err();
        assert!(err.contains("trace convert"), "{err}");
    }

    #[test]
    fn binary_stream_requires_a_path() {
        let err = run(&argv(&["trace", "small", "--binary"])).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
        let err = run(&argv(&["soak", "--binary"])).unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");
    }

    #[test]
    fn soak_trace_out_streams_run() {
        let dir = std::env::temp_dir().join("oddci-cli-soak-stream-test");
        let stream_path = dir.join("soak.trace.jsonl");
        let out = run(&argv(&[
            "soak",
            "--nodes",
            "2",
            "--queries",
            "8",
            "--shards",
            "2",
            "--batch",
            "4",
            "--trace-out",
            stream_path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["tasks_unaccounted"], 0);
        let stream = &v["stream"];
        assert!(stream["emitted"].as_u64().unwrap() > 0, "{out}");
        assert_eq!(
            stream["emitted"].as_u64().unwrap(),
            stream["persisted"].as_u64().unwrap() + stream["dropped"].as_u64().unwrap()
        );
        let text = std::fs::read_to_string(&stream_path).unwrap();
        let (_, events) = oddci_telemetry::sink::read_jsonl_events(&text).expect("valid stream");
        assert_eq!(events.len() as u64, stream["persisted"].as_u64().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn soak_rejects_degenerate_pools() {
        let err = run(&argv(&["soak", "--shards", "0"])).unwrap_err();
        assert!(err.contains("1..=64"), "{err}");
        let err = run(&argv(&["soak", "--batch", "9999"])).unwrap_err();
        assert!(err.contains("1..=1024"), "{err}");
        let err = run(&argv(&["soak", "--nodes", "2", "--target", "5"])).unwrap_err();
        assert!(err.contains("--target"), "{err}");
    }

    #[test]
    fn soak_small_run_reports_throughput() {
        let out = run(&argv(&[
            "soak",
            "--nodes",
            "2",
            "--queries",
            "8",
            "--shards",
            "2",
            "--batch",
            "4",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["queries"], 8);
        assert_eq!(v["tasks_unaccounted"], 0);
        assert!(v["throughput_tasks_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn trace_rejects_unknown_scenario() {
        let err = run(&argv(&["trace", "bogus"])).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn failover_drill_loses_no_tasks() {
        let out = run(&argv(&[
            "failover",
            "--pnas",
            "3",
            "--queries",
            "48",
            "--snapshot-interval-ms",
            "40",
            "--faults",
            "headend-crash=1.0@0.3..30",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["tasks_lost"], 0, "{out}");
        assert_eq!(v["tasks_unaccounted"], 0, "{out}");
        assert_eq!(v["standby_epoch"], 1, "{out}");
        assert_eq!(v["pnas_reacked"], 3, "{out}");
    }

    #[test]
    fn failover_requires_a_crash_window() {
        let err = run(&argv(&["failover", "--faults", "heartbeat-drop=0.2"])).unwrap_err();
        assert!(err.contains("never crashes"), "{err}");
    }

    #[test]
    fn simulate_json_output_parses() {
        let out = run(&argv(&[
            "simulate",
            "--nodes",
            "100",
            "--target",
            "20",
            "--tasks",
            "40",
            "--cost-secs",
            "5",
            "--image-mb",
            "1",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["tasks_completed"], 40);
    }
}
