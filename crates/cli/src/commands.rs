//! The subcommand implementations.

use crate::args::{ArgError, Parsed};
use oddci_analytics::{efficiency as eq2, makespan, wakeup_envelope, InstanceParams};
use oddci_core::world::ChurnConfig;
use oddci_core::{World, WorldConfig};
use oddci_types::{Bandwidth, DataSize, SimDuration, SimTime};
use oddci_workload::alignment::random_sequence;
use oddci_workload::{JobGenerator, JobProfile};
use std::fmt::Write;

/// `oddci simulate`: run a full world for one job.
pub fn simulate(p: &Parsed) -> Result<String, ArgError> {
    let nodes: u64 = p.num("nodes", 1_000)?;
    let target: u64 = p.num("target", 100)?;
    let tasks: u64 = p.num("tasks", 500)?;
    let cost_secs: f64 = p.num("cost-secs", 60.0)?;
    let image_mb: u64 = p.num("image-mb", 4)?;
    let seed: u64 = p.num("seed", 42)?;
    let churn = p.pair("churn")?;
    if target > nodes {
        return Err(ArgError(format!(
            "--target {target} exceeds --nodes {nodes}"
        )));
    }

    let cfg = WorldConfig {
        nodes,
        churn: churn.map(|(on, off)| ChurnConfig {
            mean_on: SimDuration::from_mins(on),
            mean_off: SimDuration::from_mins(off),
        }),
        ..Default::default()
    };

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(image_mb),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);
    let profile = job.profile();

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;
    let metrics = sim.world().metrics().snapshot();
    let predicted = makespan(&profile, &InstanceParams::paper(target));

    if p.flag("json") {
        let v = serde_json::json!({
            "nodes": nodes,
            "target": target,
            "tasks_completed": report.tasks_completed,
            "makespan_secs": report.makespan.as_secs_f64(),
            "model_makespan_secs": predicted.as_secs_f64(),
            "requeues": report.requeues,
            "wakeup_broadcasts": report.wakeup_broadcasts,
            "mean_wakeup_latency_secs": metrics.wakeup_latency.mean,
            "joins": metrics.joins,
        });
        return Ok(serde_json::to_string_pretty(&v).expect("json"));
    }

    let mut out = String::new();
    let _ = writeln!(out, "OddCI-DTV simulation (seed {seed})");
    let _ = writeln!(out, "  audience          : {nodes} receivers");
    let _ = writeln!(out, "  instance          : {target} nodes");
    let _ = writeln!(out, "  job               : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(
        out,
        "  completed         : {} tasks",
        report.tasks_completed
    );
    let _ = writeln!(out, "  makespan          : {}", report.makespan);
    let _ = writeln!(out, "  model (eq. 1)     : {predicted}");
    let _ = writeln!(out, "  wakeup broadcasts : {}", report.wakeup_broadcasts);
    let _ = writeln!(out, "  requeues (churn)  : {}", report.requeues);
    let _ = writeln!(
        out,
        "  mean node wakeup  : {:.1}s over {} joins",
        metrics.wakeup_latency.mean, metrics.joins
    );
    Ok(out)
}

/// `oddci chaos`: run one simulation under an injected-fault plan and
/// report how the control plane coped.
pub fn chaos(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::{FaultClass, FaultPlan};

    let nodes: u64 = p.num("nodes", 500)?;
    let target: u64 = p.num("target", 100)?;
    let tasks: u64 = p.num("tasks", 300)?;
    let cost_secs: f64 = p.num("cost-secs", 30.0)?;
    let seed: u64 = p.num("seed", 42)?;
    let intensity: f64 = p.num("intensity", 1.0)?;
    if target > nodes {
        return Err(ArgError(format!(
            "--target {target} exceeds --nodes {nodes}"
        )));
    }
    if !(0.0..=10.0).contains(&intensity) {
        return Err(ArgError("--intensity must be in [0, 10]".into()));
    }
    let plan = match p.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(ArgError)?,
        None => FaultPlan::standard_mix(),
    }
    .scaled(intensity);

    let cfg = WorldConfig {
        nodes,
        faults: plan.clone(),
        ..Default::default()
    };

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;
    let metrics = sim.world().metrics().snapshot();

    if p.flag("json") {
        let v = serde_json::json!({
            "nodes": nodes,
            "target": target,
            "intensity": intensity,
            "tasks_completed": report.tasks_completed,
            "makespan_secs": report.makespan.as_secs_f64(),
            "requeues": metrics.requeues,
            "task_fetch_retries": metrics.task_fetch_retries,
            "fetch_aborts": metrics.fetch_aborts,
            "faults": serde_json::to_value(&metrics.faults).expect("counters"),
        });
        return Ok(serde_json::to_string_pretty(&v).expect("json"));
    }

    let mut out = String::new();
    let _ = writeln!(out, "OddCI chaos run (seed {seed}, intensity {intensity})");
    let _ = writeln!(out, "  audience          : {nodes} receivers");
    let _ = writeln!(out, "  instance          : {target} nodes");
    let _ = writeln!(out, "  job               : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(
        out,
        "  completed         : {} tasks",
        report.tasks_completed
    );
    let _ = writeln!(out, "  makespan          : {}", report.makespan);
    let _ = writeln!(out, "  requeues          : {}", metrics.requeues);
    let _ = writeln!(out, "  fetch retries     : {}", metrics.task_fetch_retries);
    let _ = writeln!(out, "  retry chains dead : {}", metrics.fetch_aborts);
    let _ = writeln!(
        out,
        "  injected faults   : {} total",
        metrics.faults.total()
    );
    for class in FaultClass::ALL {
        let n = metrics.faults.get(class);
        if n > 0 {
            let _ = writeln!(out, "    {:<22}: {n}", class.label());
        }
    }
    if plan.is_empty() {
        let _ = writeln!(out, "  (empty fault plan — this was a calm run)");
    }
    Ok(out)
}

/// Companion Chrome artifact path for a streamed JSONL path:
/// `x.trace.jsonl` → `x.trace.stream.json`.
fn chrome_stream_path(jsonl_path: &str) -> String {
    let stem = jsonl_path.strip_suffix(".jsonl").unwrap_or(jsonl_path);
    format!("{stem}.stream.json")
}

/// Build a streaming sink at `stream_path`, stamped with scenario/seed
/// metadata: JSONL plus the derived Chrome artifact, or — with `binary`
/// — the compact binary format (one exclusive output, per-lane writers;
/// `oddci trace convert` re-emits the text forms offline).
fn open_stream_sink(
    stream_path: &str,
    lanes: usize,
    lane_capacity: Option<usize>,
    binary: bool,
    scenario: &str,
    seed: u64,
    plane: &str,
) -> Result<std::sync::Arc<oddci_telemetry::StreamingSink>, ArgError> {
    let path = std::path::Path::new(stream_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("cannot create `{}`: {e}", parent.display())))?;
        }
    }
    let mut builder = oddci_telemetry::StreamingSink::builder();
    builder = if binary {
        builder.binary(stream_path)
    } else {
        builder
            .jsonl(stream_path)
            .chrome(chrome_stream_path(stream_path))
    };
    if let Some(capacity) = lane_capacity {
        builder = builder.lane_capacity(capacity);
    }
    builder
        .lanes(lanes)
        .meta("scenario", scenario)
        .meta("seed", seed.to_string())
        .meta("plane", plane)
        .start()
        .map_err(|e| ArgError(format!("cannot open stream `{stream_path}`: {e}")))
}

/// Parses the optional `--lane-capacity` override (events buffered per
/// sink lane before offers drop).
fn lane_capacity_arg(p: &Parsed) -> Result<Option<usize>, ArgError> {
    match p.get("lane-capacity") {
        None => Ok(None),
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| {
                ArgError(format!("`--lane-capacity` expects a number, got `{raw}`"))
            })?;
            if n == 0 {
                return Err(ArgError("--lane-capacity must be positive".into()));
            }
            Ok(Some(n))
        }
    }
}

/// Render the one-line summary of a finished sink. Drops carry their
/// share of the emitted total: an absolute count reads as noise at
/// million-event scale when the real story is "53 % lost".
fn stream_summary_line(summary: &oddci_telemetry::SinkSummary) -> String {
    let files = summary
        .outputs
        .iter()
        .map(|o| format!("{} ({} B)", o.path.display(), o.bytes))
        .collect::<Vec<_>>()
        .join(", ");
    let pct = if summary.stats.emitted == 0 {
        0.0
    } else {
        100.0 * summary.stats.dropped as f64 / summary.stats.emitted as f64
    };
    format!(
        "{} emitted, {} persisted, {} dropped ({pct:.1}%), {} flushes -> {files}",
        summary.stats.emitted,
        summary.stats.persisted,
        summary.stats.dropped,
        summary.stats.flushes
    )
}

/// `oddci trace`: run one scenario with event recording enabled, export a
/// Chrome `trace_event` file and print the per-phase latency breakdown.
/// With `--stream <path>` the run *also* streams every event to disk as
/// it happens (JSONL + Chrome), and the `W = 1.5·I/β` agreement check is
/// recomputed from the streamed artifact instead of the in-memory ring.
pub fn trace(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::FaultPlan;
    use oddci_telemetry::{export, Phase, Telemetry};

    let scenario = p.get("scenario").unwrap_or("small");
    let out_path = p.get("out").unwrap_or("results/trace.json");
    let stream_path = p.get("stream");
    let seed: u64 = p.num("seed", 42)?;
    let lane_capacity = lane_capacity_arg(p)?;
    let binary = p.flag("binary");
    if binary && stream_path.is_none() {
        return Err(ArgError("--binary requires --stream PATH".into()));
    }

    // Scenario presets sized so even `chaos` finishes in seconds.
    let (nodes, target, tasks, cost_secs, image_mb, faults) = match scenario {
        "small" => (100u64, 30u64, 60u64, 10.0f64, 1u64, FaultPlan::none()),
        "standard" => (500, 100, 300, 30.0, 4, FaultPlan::none()),
        "chaos" => (200, 50, 120, 15.0, 2, FaultPlan::standard_mix()),
        other => {
            return Err(ArgError(format!(
                "unknown scenario `{other}` (expected small | standard | chaos)"
            )))
        }
    };

    let sink = match stream_path {
        Some(path) => Some(open_stream_sink(
            path,
            4,
            lane_capacity,
            binary,
            scenario,
            seed,
            "sim",
        )?),
        None => None,
    };
    let mut tele = Telemetry::recording();
    if let Some(sink) = &sink {
        tele = tele.with_sink(sink.clone());
    }
    let cfg = WorldConfig {
        nodes,
        faults,
        telemetry: tele.clone(),
        ..Default::default()
    };
    let beta = cfg.dtv.beta;

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(image_mb),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;

    let events = tele.events();
    let trace_json = export::chrome_trace(&events);
    let path = std::path::Path::new(out_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("cannot create `{}`: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, &trace_json)
        .map_err(|e| ArgError(format!("cannot write `{out_path}`: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "OddCI trace (scenario {scenario}, seed {seed})");
    let _ = writeln!(out, "  audience   : {nodes} receivers, instance {target}");
    let _ = writeln!(out, "  job        : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(out, "  makespan   : {}", report.makespan);
    let _ = writeln!(out, "  trace      : {} events -> {out_path}", events.len());
    let streamed_events = match (&sink, stream_path) {
        (Some(sink), Some(path)) => {
            let summary = sink
                .finish()
                .map_err(|e| ArgError(format!("stream writer failed: {e}")))?;
            let _ = writeln!(out, "  streamed   : {}", stream_summary_line(&summary));
            let evs = if binary {
                let trace = oddci_telemetry::binary::read_file(std::path::Path::new(path))
                    .map_err(|e| ArgError(format!("cannot read back `{path}`: {e}")))?;
                if let Some(report) = &trace.truncated {
                    let _ = writeln!(out, "  truncated  : {report}");
                }
                trace.events
            } else {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ArgError(format!("cannot read back `{path}`: {e}")))?;
                let (_, evs) = oddci_telemetry::sink::read_jsonl_events(&text)
                    .map_err(|e| ArgError(format!("invalid stream `{path}`: {e}")))?;
                evs
            };
            Some(evs)
        }
        _ => None,
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (label, s) in tele.phase_breakdown() {
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s",
            label, s.count, s.mean, s.p50, s.p90, s.p99, s.max
        );
    }

    // Wakeup agreement: the measured wakeup is wait-for-config plus image
    // read; the §5.1 mean W = 1.5·I/β covers the image-only carousel, so
    // the measured mean should land inside the [best, worst] envelope
    // widened by the small PNA/config files sharing the cycle. When
    // streaming, the components are recomputed from the on-disk artifact
    // — the check the ring cannot support once it wraps.
    let mean_us = |durs: &[u64]| -> f64 {
        if durs.is_empty() {
            0.0
        } else {
            durs.iter().sum::<u64>() as f64 / durs.len() as f64 / 1e6
        }
    };
    let (source, wait_mean, boot_mean) = match &streamed_events {
        Some(evs) => {
            use oddci_telemetry::sink::span_durations_us;
            (
                "streamed trace",
                mean_us(&span_durations_us(evs, Phase::WakeupWait)),
                mean_us(&span_durations_us(evs, Phase::DveBoot)),
            )
        }
        None => (
            "ring",
            tele.phase_summary(Phase::WakeupWait).mean,
            tele.phase_summary(Phase::DveBoot).mean,
        ),
    };
    let measured = wait_mean + boot_mean;
    let (_, w_mean, _) = wakeup_envelope(DataSize::from_megabytes(image_mb), beta);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  wakeup ({source}): measured {measured:.1}s (wait {wait_mean:.1}s + boot {boot_mean:.1}s) vs W = 1.5·I/β = {:.1}s ({:+.0}%)",
        w_mean.as_secs_f64(),
        100.0 * (measured - w_mean.as_secs_f64()) / w_mean.as_secs_f64()
    );
    Ok(out)
}

/// `oddci trace convert`: losslessly re-emit the JSONL and Chrome text
/// artifacts from a binary trace recorded with `--stream PATH --binary`.
/// The converted files are byte-compatible with directly streamed ones
/// (same header, same writers), so every downstream consumer — the
/// wakeup check, `schema_check`, Perfetto — works unchanged.
pub fn trace_convert(p: &Parsed) -> Result<String, ArgError> {
    let input = p.get("in").ok_or_else(|| {
        ArgError(
            "usage: oddci trace convert <file.trace.bin> [--jsonl PATH] [--chrome PATH]".into(),
        )
    })?;
    let stem = input.strip_suffix(".bin").unwrap_or(input);
    let jsonl = p
        .get("jsonl")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{stem}.jsonl"));
    let chrome = p
        .get("chrome")
        .map(str::to_string)
        .unwrap_or_else(|| chrome_stream_path(&jsonl));

    let trace = oddci_telemetry::binary::read_file(std::path::Path::new(input))
        .map_err(|e| ArgError(format!("cannot read `{input}`: {e}")))?;
    let outputs = oddci_telemetry::binary::convert(
        &trace,
        Some(std::path::Path::new(&jsonl)),
        Some(std::path::Path::new(&chrome)),
    )
    .map_err(|e| ArgError(format!("cannot convert `{input}`: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "converted {input}: {} event(s), {} lane(s)",
        trace.events.len(),
        trace.header.lanes
    );
    if let Some(report) = &trace.truncated {
        let _ = writeln!(out, "  truncated : {report}");
    }
    for o in &outputs {
        let _ = writeln!(out, "  -> {} ({} B)", o.path.display(), o.bytes);
    }
    Ok(out)
}

/// Renders one `oddci top` refresh: the registry with deltas/rates
/// against the previous poll, then the per-connection rows.
fn render_top(
    reply_registry: &oddci_telemetry::RegistrySnapshot,
    connections: &[oddci_wire::ConnTraffic],
    prev: Option<&oddci_telemetry::RegistrySnapshot>,
    elapsed_secs: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<34} {:>12} {:>10} {:>10}",
        "counter", "value", "delta", "per sec"
    );
    for (name, value) in &reply_registry.counters {
        // A delta needs two samples *of this counter*. Counters created
        // after the previous poll (e.g. a fault class firing for the
        // first time) have no baseline — deltaing them against zero
        // would report their whole lifetime value as one interval's
        // rate, so they render as `-` until the next poll.
        let (shown_delta, rate) = match prev.and_then(|s| s.counters.get(name)) {
            Some(&before) => {
                let delta = value.saturating_sub(before);
                let rate = if elapsed_secs > 0.0 {
                    format!("{:.1}", delta as f64 / elapsed_secs)
                } else {
                    "-".to_string()
                };
                (format!("+{delta}"), rate)
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let _ = writeln!(out, "  {name:<34} {value:>12} {shown_delta:>10} {rate:>10}");
    }
    for (name, value) in &reply_registry.gauges {
        let _ = writeln!(out, "  {name:<34} {value:>12.3}");
    }
    if !reply_registry.histograms.is_empty() {
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &reply_registry.histograms {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s",
                name, h.count, h.mean, h.p50, h.p99, h.max
            );
        }
    }
    if !connections.is_empty() {
        let _ = writeln!(
            out,
            "  {:<6} {:<6} {:>9} {:>12} {:>9} {:>12} {:>8} {:>8}",
            "conn", "state", "tx fr", "tx B", "rx fr", "rx B", "rejects", "resyncs"
        );
        for c in connections {
            let _ = writeln!(
                out,
                "  #{:<5} {:<6} {:>9} {:>12} {:>9} {:>12} {:>8} {:>8}",
                c.conn,
                if c.open { "open" } else { "closed" },
                c.tx_frames,
                c.tx_bytes,
                c.rx_frames,
                c.rx_bytes,
                c.checksum_rejects,
                c.resyncs
            );
        }
    }
    out
}

/// `oddci top`: poll a running socket headend's live metrics plane.
/// Sends [`StatsQuery`](oddci_wire::WireMsg::StatsQuery) on an interval
/// and renders the registry (with deltas/rates between polls) plus the
/// per-connection wire counters. A monitoring connection never performs
/// the hello handshake, so it does not consume a node identity.
pub fn top(p: &Parsed) -> Result<String, ArgError> {
    use oddci_wire::{ClientConfig, Integrity, WireClient, WireMsg};
    use std::time::Duration;

    let addr = socket_addr(p, "connect")?;
    let count: u64 = p.num("count", 0)?; // 0 = poll until the headend goes away
    let interval_ms: u64 = p.num("interval-ms", 1000)?;
    if interval_ms == 0 {
        return Err(ArgError("--interval-ms must be positive".into()));
    }
    let mut ccfg = ClientConfig::new(Integrity::hmac(b"live-oddci-key"));
    ccfg.connect_timeout = Duration::from_secs(p.num("connect-timeout", 10)?);
    let client =
        WireClient::connect(addr, ccfg).map_err(|e| ArgError(format!("top on {addr}: {e}")))?;

    let mut prev: Option<oddci_telemetry::RegistrySnapshot> = None;
    let mut last_poll = std::time::Instant::now();
    let mut polls: u64 = 0;
    let mut final_out = String::new();
    loop {
        let corr = polls;
        if !client.send(&WireMsg::StatsQuery { corr }) {
            if polls == 0 {
                return Err(ArgError(format!("top on {addr}: connection closed")));
            }
            break;
        }
        // The headend broadcasts wakeups/shutdown to every connection;
        // skip that traffic until our correlated reply shows up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let reply = loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(ArgError(format!("top on {addr}: no StatsReply within 5s")));
            }
            match client.receiver().recv_timeout(left) {
                Ok(WireMsg::StatsReply {
                    corr: got,
                    registry,
                    connections,
                }) if got == corr => break Some((registry, connections)),
                Ok(WireMsg::Shutdown) => break None,
                Ok(_) => continue,
                Err(_) if client.is_closed() => break None,
                Err(_) => continue,
            }
        };
        let Some((registry, connections)) = reply else {
            if polls == 0 {
                return Err(ArgError(format!("top on {addr}: headend shut down")));
            }
            break;
        };
        let elapsed = last_poll.elapsed().as_secs_f64();
        last_poll = std::time::Instant::now();
        polls += 1;
        if p.flag("json") {
            let conns: Vec<serde_json::Value> = connections
                .iter()
                .map(|c| {
                    serde_json::json!({
                        "conn": c.conn,
                        "open": c.open,
                        "tx_frames": c.tx_frames,
                        "rx_frames": c.rx_frames,
                        "tx_bytes": c.tx_bytes,
                        "rx_bytes": c.rx_bytes,
                        "checksum_rejects": c.checksum_rejects,
                        "resyncs": c.resyncs,
                    })
                })
                .collect();
            let v = serde_json::json!({
                "addr": addr.to_string(),
                "poll": polls,
                "registry": serde_json::to_value(&registry).expect("registry json"),
                "connections": conns,
            });
            final_out = serde_json::to_string_pretty(&v).expect("serialize top json");
        } else {
            let mut text = format!("oddci top — {addr}, poll {polls}\n");
            text.push_str(&render_top(&registry, &connections, prev.as_ref(), elapsed));
            final_out = text;
        }
        prev = Some(registry);
        if count > 0 && polls >= count {
            break;
        }
        // Streaming mode: show each refresh as it lands; the final one is
        // also the return value.
        println!("{final_out}");
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    client.request_close();
    Ok(final_out)
}

/// `oddci wakeup`: the §5.1 envelope.
pub fn wakeup(p: &Parsed) -> Result<String, ArgError> {
    let image_mb: u64 = p.num("image-mb", 8)?;
    let beta_mbps: f64 = p.num("beta-mbps", 1.0)?;
    if beta_mbps <= 0.0 {
        return Err(ArgError("--beta-mbps must be positive".into()));
    }
    let image = DataSize::from_megabytes(image_mb);
    let beta = Bandwidth::from_mbps(beta_mbps);
    let (best, mean, worst) = wakeup_envelope(image, beta);
    Ok(format!(
        "wakeup envelope for a {image_mb} MB image at {beta_mbps} Mbps spare capacity:\n  \
         best  (attach at image start) : {:.1}s\n  \
         mean  (W = 1.5·I/β)           : {:.1}s\n  \
         worst (just missed the start) : {:.1}s\n  \
         independent of instance size: broadcast reaches every tuned receiver at once\n",
        best.as_secs_f64(),
        mean.as_secs_f64(),
        worst.as_secs_f64()
    ))
}

/// `oddci efficiency`: equations (1) and (2) at a point.
pub fn efficiency(p: &Parsed) -> Result<String, ArgError> {
    let phi: f64 = p.num("phi", 1_000.0)?;
    let ratio: f64 = p.num("ratio", 100.0)?;
    let nodes: u64 = p.num("nodes", 1_000)?;
    if phi <= 0.0 || ratio <= 0.0 || nodes == 0 {
        return Err(ArgError(
            "--phi, --ratio and --nodes must be positive".into(),
        ));
    }
    let params = InstanceParams::paper(nodes);
    let n = (ratio * nodes as f64).round() as u64;
    let profile = JobProfile::from_suitability(
        DataSize::from_megabytes(10),
        n.max(1),
        DataSize::from_bytes(1_000),
        params.delta,
        phi,
    );
    let m = makespan(&profile, &params);
    let e = eq2(&profile, &params);
    Ok(format!(
        "paper scenario (I=10MB, β=1Mbps, δ=150Kbps, s+r=1KB):\n  \
         suitability Φ       : {phi}\n  \
         n/N                 : {ratio} ({n} tasks on {nodes} nodes)\n  \
         task cost implied   : {:.1}s\n  \
         makespan (eq. 1)    : {}\n  \
         efficiency (eq. 2)  : {e:.4}\n",
        profile.mean_cost.as_secs_f64(),
        m
    ))
}

/// `oddci live`: the thread-based demo.
pub fn live(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, LiveConfig, LiveOddci};
    let nodes: u64 = p.num("nodes", 4)?;
    let queries: u64 = p.num("queries", 8)?;
    let target: u64 = p.num("target", 3)?;
    if nodes == 0 || queries == 0 || target == 0 {
        return Err(ArgError(
            "--nodes, --queries and --target must be positive".into(),
        ));
    }
    let live = LiveOddci::start(LiveConfig {
        nodes,
        ..Default::default()
    });
    let outcome = live
        .run_alignment_job(
            AlignmentImage::small_demo(),
            queries,
            target,
            std::time::Duration::from_secs(120),
        )
        .ok_or_else(|| ArgError("live job did not complete within 120s".into()))?;
    live.shutdown();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "live OddCI run: {} receiver threads, instance {target}",
        nodes
    );
    let _ = writeln!(out, "  makespan : {}", outcome.report.makespan);
    let _ = writeln!(out, "  task      score  kind");
    for (task, score) in &outcome.scores {
        let _ = writeln!(
            out,
            "  {:<9} {:>5}  {}",
            task.to_string(),
            score,
            if task.raw() % 2 == 0 {
                "planted homolog"
            } else {
                "random noise"
            }
        );
    }
    Ok(out)
}

/// `oddci soak`: stress the live headend and report task throughput.
///
/// Runs one alignment job with a deliberately small database so each task
/// is cheap: throughput is then dominated by headend round trips, which is
/// exactly what the sharded architecture changes. `--single-loop` selects
/// the pre-sharding baseline headend for comparison.
pub fn soak(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
    use oddci_telemetry::Telemetry;

    let shards: usize = p.num("shards", 4)?;
    let dispatch: usize = p.num("dispatch", shards.clamp(1, 4))?;
    let batch: usize = p.num("batch", 16)?;
    let nodes: u64 = p.num("nodes", 8)?;
    let queries: u64 = p.num("queries", 512)?;
    let target: u64 = p.num("target", nodes)?;
    let seed: u64 = p.num("seed", 42)?;
    let mode = if p.flag("single-loop") {
        HeadendMode::SingleLoop
    } else {
        HeadendMode::Sharded {
            shards,
            dispatch,
            batch,
        }
    };
    // Degenerate pool sizes (`--shards 0`, oversized batches, …) must be
    // a clear argument error, never a runtime panic.
    mode.validate().map_err(ArgError)?;
    if nodes == 0 || queries == 0 {
        return Err(ArgError("--nodes and --queries must be positive".into()));
    }
    if target == 0 || target > nodes {
        return Err(ArgError(format!(
            "--target must be within 1..=--nodes ({nodes}), got {target}"
        )));
    }

    // A tiny database plus short random queries keeps each task a cheap
    // index scan (a few µs), so the soak measures headend round trips —
    // the thing sharding changes — rather than alignment arithmetic.
    let image = AlignmentImage {
        db_len: 400,
        ..AlignmentImage::small_demo()
    };
    let work: Vec<std::sync::Arc<Vec<u8>>> = (0..queries)
        .map(|i| std::sync::Arc::new(random_sequence(16, seed ^ i)))
        .collect();
    // One sink lane per headend thread (carousel + shards + dispatch)
    // so their trace offers never contend; see ShardedHeadend::start.
    let lane_capacity = lane_capacity_arg(p)?;
    let binary = p.flag("binary");
    if binary && p.get("trace-out").is_none() {
        return Err(ArgError("--binary requires --trace-out PATH".into()));
    }
    let sink = match p.get("trace-out") {
        Some(path) => {
            let lanes = match mode {
                HeadendMode::SingleLoop => 2,
                HeadendMode::Sharded { .. } | HeadendMode::Socket { .. } => 1 + shards + dispatch,
            };
            Some(open_stream_sink(
                path,
                lanes,
                lane_capacity,
                binary,
                "soak",
                seed,
                "live",
            )?)
        }
        None => None,
    };
    let mut tele = Telemetry::recording();
    if let Some(sink) = &sink {
        tele = tele.with_sink(sink.clone());
    }
    let live = LiveOddci::start(LiveConfig {
        nodes,
        seed,
        telemetry: tele.clone(),
        mode,
        ..Default::default()
    });
    let outcome = live
        .run_query_job(image, work, target, std::time::Duration::from_secs(300))
        .ok_or_else(|| ArgError("soak job did not complete within 300s".into()))?;
    // shutdown() joins every thread and flushes the sink before reporting.
    let shutdown = live.shutdown();
    let stream_summary = match &sink {
        Some(sink) => Some(
            sink.finish()
                .map_err(|e| ArgError(format!("stream writer failed: {e}")))?,
        ),
        None => None,
    };

    let makespan = outcome.report.makespan.as_secs_f64();
    let throughput = queries as f64 / makespan.max(1e-9);
    let snapshot = tele.metrics_snapshot();

    if p.flag("json") {
        let mut v = serde_json::json!({
            "mode": if matches!(mode, HeadendMode::SingleLoop) { "single-loop" } else { "sharded" },
            "shards": if matches!(mode, HeadendMode::SingleLoop) { 0 } else { shards },
            "dispatch": if matches!(mode, HeadendMode::SingleLoop) { 0 } else { dispatch },
            "batch": if matches!(mode, HeadendMode::SingleLoop) { 1 } else { batch },
            "nodes": nodes,
            "queries": queries,
            "target": target,
            "makespan_secs": makespan,
            "throughput_tasks_per_sec": throughput,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "gauges": snapshot.gauges,
        });
        if let (serde_json::Value::Object(entries), Some(s)) = (&mut v, &stream_summary) {
            let pct = if s.stats.emitted == 0 {
                0.0
            } else {
                100.0 * s.stats.dropped as f64 / s.stats.emitted as f64
            };
            entries.push((
                "stream".to_string(),
                serde_json::json!({
                    "emitted": s.stats.emitted,
                    "persisted": s.stats.persisted,
                    "dropped": s.stats.dropped,
                    "dropped_pct": pct,
                    "flushes": s.stats.flushes,
                }),
            ));
        }
        return Ok(serde_json::to_string_pretty(&v).expect("serialize soak json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "live soak: {nodes} receiver threads, instance {target}, {queries} tasks"
    );
    let _ = match mode {
        HeadendMode::SingleLoop => writeln!(out, "  headend     : single-loop baseline"),
        HeadendMode::Sharded { .. } | HeadendMode::Socket { .. } => writeln!(
            out,
            "  headend     : sharded ({shards} shards, {dispatch} dispatch, batch {batch})"
        ),
    };
    let _ = writeln!(out, "  makespan    : {:.3}s", makespan);
    let _ = writeln!(out, "  throughput  : {throughput:.1} tasks/s");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    if shutdown.threads_failed > 0 {
        let _ = writeln!(out, "  PANICKED    : {} thread(s)", shutdown.threads_failed);
    }
    if let Some(summary) = &stream_summary {
        let _ = writeln!(out, "  streamed    : {}", stream_summary_line(summary));
    }
    let lags: Vec<(&String, &f64)> = snapshot
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("controller.heartbeat_lag."))
        .collect();
    if !lags.is_empty() {
        let _ = writeln!(out, "  heartbeat lag (last beat, s):");
        for (name, lag) in lags {
            let shard = name.rsplit('.').next().unwrap_or(name);
            let _ = writeln!(out, "    {shard:<8} {lag:.3}");
        }
    }
    Ok(out)
}

/// `oddci check`: the concurrency gate — workspace lint plus bounded
/// model checking of the scaled-down headend scenarios. With `--replay`
/// it re-executes one pinned interleaving instead (for reproducing a
/// schedule printed by an earlier run or by CI).
///
/// Any lint violation, any failure in an `expect-clean` scenario, and
/// any `expect-fail` scenario the detector stops catching (a sensitivity
/// regression) all surface as errors, so `oddci check` exits nonzero.
pub fn check(p: &Parsed) -> Result<String, ArgError> {
    use oddci_check::explore::Explorer;
    use oddci_check::{lint, scenarios};

    let seed: u64 = p.num("seed", 11)?;
    let schedules: usize = p.num("schedules", 400)?;
    if schedules == 0 {
        return Err(ArgError("--schedules must be positive".into()));
    }

    if p.flag("list") {
        let mut out = String::new();
        for s in scenarios::ALL {
            let _ = writeln!(
                out,
                "{:36} {}",
                s.name,
                if s.expect_clean {
                    "expect-clean"
                } else {
                    "expect-fail"
                }
            );
        }
        return Ok(out);
    }

    let selected: Vec<&scenarios::Scenario> = match p.get("scenario") {
        Some(name) => {
            let s = scenarios::by_name(name).ok_or_else(|| {
                ArgError(format!(
                    "unknown scenario `{name}` — `oddci check --list` shows them"
                ))
            })?;
            vec![s]
        }
        None => scenarios::ALL.iter().collect(),
    };

    if let Some(schedule) = p.get("replay") {
        let [s] = selected[..] else {
            return Err(ArgError("--replay requires --scenario NAME".into()));
        };
        let outcome = Explorer::new(seed).replay(schedule, s.setup);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay {} under {} ({} step(s))",
            s.name, outcome.schedule, outcome.steps
        );
        match outcome.failure {
            Some(msg) => {
                let _ = writeln!(out, "failure reproduced:\n{msg}");
            }
            None => {
                let _ = writeln!(out, "no failure under this interleaving");
            }
        }
        return Ok(out);
    }

    let mut out = String::new();
    if !p.flag("skip-lint") {
        let root = lint::find_root(std::path::Path::new(".")).ok_or_else(|| {
            ArgError(
                "no workspace root at or above the current directory — \
                 run from inside the repository or pass --skip-lint"
                    .into(),
            )
        })?;
        let violations = lint::run(&root).map_err(|e| ArgError(format!("lint failed: {e}")))?;
        if !violations.is_empty() {
            let mut msg = format!("lint: {} violation(s)\n", violations.len());
            for v in &violations {
                let _ = writeln!(msg, "  {v}");
            }
            return Err(ArgError(msg));
        }
        let _ = writeln!(out, "lint : clean");
    }

    let mut failures: Vec<String> = Vec::new();
    for s in selected {
        let result = Explorer::new(seed)
            .max_schedules(schedules)
            .explore(s.setup);
        match (&result.failure, s.expect_clean) {
            (None, true) => {
                let _ = writeln!(
                    out,
                    "ok   {:36} clean over {} schedule(s){}",
                    s.name,
                    result.schedules,
                    if result.exhausted { " (exhausted)" } else { "" },
                );
            }
            (Some(f), false) => {
                let _ = writeln!(
                    out,
                    "ok   {:36} detector caught after {} schedule(s) — replay {}",
                    s.name, result.schedules, f.schedule
                );
            }
            (Some(f), true) => {
                failures.push(format!(
                    "{}: failure in supposedly-correct protocol: {} — replay with \
                     `oddci check --scenario {} --seed {seed} --replay {}`",
                    s.name, f.message, s.name, f.schedule
                ));
            }
            (None, false) => {
                failures.push(format!(
                    "{}: detector missed the seeded bug within {} schedule(s) \
                     (sensitivity regression)",
                    s.name, result.schedules
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(ArgError(failures.join("\n")))
    }
}

/// Parses a required `--name HOST:PORT` socket address option.
fn socket_addr(p: &Parsed, name: &str) -> Result<std::net::SocketAddr, ArgError> {
    let raw = p.get(name).ok_or_else(|| {
        ArgError(format!(
            "`--{name} HOST:PORT` is required (e.g. --{name} 127.0.0.1:7800)"
        ))
    })?;
    raw.parse()
        .map_err(|_| ArgError(format!("`--{name}` expects HOST:PORT, got `{raw}`")))
}

/// `oddci headend`: the socket-backed live plane's server half. Binds a
/// TCP listener, waits for `oddci pna --connect` processes to join, runs
/// one alignment job over the wire (wakeup image streamed in checksummed
/// chunks, heartbeats on the direct channels) and reports the outcome
/// plus transport counters.
pub fn headend(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};

    let listen = socket_addr(p, "listen")?;
    if p.get("standby").is_some() {
        return headend_standby(p, listen);
    }
    let pnas: u64 = p.num("pnas", 3)?;
    let queries: u64 = p.num("queries", 8)?;
    let target: u64 = p.num("target", pnas.min(3))?;
    let shards: usize = p.num("shards", 2)?;
    let dispatch: usize = p.num("dispatch", 2)?;
    let batch: usize = p.num("batch", 8)?;
    let seed: u64 = p.num("seed", 42)?;
    let timeout_secs: u64 = p.num("timeout", 120)?;
    let db_len: usize = p.num("db-len", 20_000)?;
    if pnas == 0 || queries == 0 || db_len == 0 || timeout_secs == 0 {
        return Err(ArgError(
            "--pnas, --queries, --db-len and --timeout must be positive".into(),
        ));
    }
    if target == 0 || target > pnas {
        return Err(ArgError(format!(
            "--target must be within 1..=--pnas ({pnas}), got {target}"
        )));
    }
    let mode = HeadendMode::Socket {
        listen,
        shards,
        dispatch,
        batch,
    };
    mode.validate().map_err(ArgError)?;

    let metrics_out = p.get("metrics-out").map(str::to_string);
    let metrics_interval_ms: u64 = p.num("metrics-interval-ms", 1000)?;
    if metrics_interval_ms == 0 {
        return Err(ArgError("--metrics-interval-ms must be positive".into()));
    }
    let snapshot_dir = p.get("snapshot-dir").map(std::path::PathBuf::from);
    let snapshot_interval_ms: u64 = p.num("snapshot-interval-ms", 500)?;
    if snapshot_interval_ms == 0 {
        return Err(ArgError("--snapshot-interval-ms must be positive".into()));
    }
    let autoscale = autoscale_policy(p, pnas as usize)?;

    let live = LiveOddci::start(LiveConfig {
        nodes: pnas,
        seed,
        mode,
        snapshot_dir,
        snapshot_interval: std::time::Duration::from_millis(snapshot_interval_ms),
        autoscale,
        ..Default::default()
    });
    let addr = live.wire_addr().expect("socket mode exposes its address");

    // `--metrics-out`: a scraper-friendly Prometheus text snapshot of the
    // registry, rewritten on an interval for as long as the plane runs.
    let metrics_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let metrics_thread = match &metrics_out {
        Some(path) => {
            let path = path.clone();
            let stop = std::sync::Arc::clone(&metrics_stop);
            let tele = live.telemetry().clone();
            let interval = std::time::Duration::from_millis(metrics_interval_ms);
            Some(
                std::thread::Builder::new()
                    .name("oddci-metrics-out".into())
                    .spawn(move || {
                        while !stop.load(std::sync::atomic::Ordering::Acquire) {
                            let text =
                                oddci_telemetry::export::prometheus(&tele.metrics_snapshot());
                            let _ = std::fs::write(&path, text);
                            std::thread::sleep(interval);
                        }
                        // One last snapshot so the file reflects the
                        // finished run.
                        let text = oddci_telemetry::export::prometheus(&tele.metrics_snapshot());
                        let _ = std::fs::write(&path, text);
                    })
                    .map_err(|e| ArgError(format!("cannot start metrics writer: {e}")))?,
            )
        }
        None => None,
    };
    let stop_metrics = |thread: Option<std::thread::JoinHandle<()>>| {
        metrics_stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(t) = thread {
            let _ = t.join();
        }
    };

    let image = AlignmentImage {
        db_len,
        ..AlignmentImage::small_demo()
    };
    let outcome = match live.run_alignment_job(
        image,
        queries,
        target,
        std::time::Duration::from_secs(timeout_secs),
    ) {
        Some(outcome) => outcome,
        None => {
            live.shutdown();
            stop_metrics(metrics_thread);
            return Err(ArgError(format!(
                "job did not complete within {timeout_secs}s — are {target}+ \
                 `oddci pna --connect {addr}` processes running?"
            )));
        }
    };
    let stats = live.wire_stats().expect("socket mode exposes wire stats");
    let connections = live.wire_conn_stats().unwrap_or_default();
    let shutdown = live.shutdown();
    stop_metrics(metrics_thread);
    let makespan = outcome.report.makespan.as_secs_f64();

    if p.flag("json") {
        let v = serde_json::json!({
            "listen": addr.to_string(),
            "pnas": pnas,
            "target": target,
            "queries": queries,
            "tasks_completed": outcome.report.tasks_completed,
            "makespan_secs": makespan,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "wire": {
                "accepted": stats.accepted,
                "tx_frames": stats.tx_frames,
                "rx_frames": stats.rx_frames,
                "tx_messages": stats.tx_messages,
                "rx_messages": stats.rx_messages,
                "multi_chunk_tx": stats.multi_chunk_tx,
                "checksum_rejects": stats.checksum_rejects,
                "resyncs": stats.resyncs,
                "duplicates": stats.duplicates,
            },
            "connections": connections.iter().map(|c| serde_json::json!({
                "conn": c.conn,
                "open": c.open,
                "tx_frames": c.tx_frames,
                "rx_frames": c.rx_frames,
                "tx_bytes": c.tx_bytes,
                "rx_bytes": c.rx_bytes,
                "checksum_rejects": c.checksum_rejects,
                "resyncs": c.resyncs,
            })).collect::<Vec<_>>(),
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize headend json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "socket headend on {addr}: instance {target} of {pnas} PNA(s), {queries} tasks"
    );
    let _ = writeln!(out, "  completed   : {}", outcome.report.tasks_completed);
    let _ = writeln!(out, "  makespan    : {makespan:.3}s");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    // Always printed: a zero here is the operator's positive confirmation
    // that no headend thread panicked, not just the absence of bad news.
    let _ = writeln!(out, "  threads lost: {}", shutdown.threads_failed);
    let _ = writeln!(
        out,
        "  wire        : {} conn(s), {} tx / {} rx frames, {} multi-chunk tx",
        stats.accepted, stats.tx_frames, stats.rx_frames, stats.multi_chunk_tx
    );
    let _ = writeln!(
        out,
        "  integrity   : {} checksum reject(s), {} resync(s), {} duplicate(s)",
        stats.checksum_rejects, stats.resyncs, stats.duplicates
    );
    for c in &connections {
        let _ = writeln!(
            out,
            "    conn #{:<4} {:<6} tx {} fr / {} B, rx {} fr / {} B, {} reject(s), {} resync(s)",
            c.conn,
            if c.open { "open" } else { "closed" },
            c.tx_frames,
            c.tx_bytes,
            c.rx_frames,
            c.rx_bytes,
            c.checksum_rejects,
            c.resyncs
        );
    }
    Ok(out)
}

/// The `--standby DIR` arm of `oddci headend`: instead of starting
/// fresh, adopt the snapshot in DIR — rebind the dead primary's address,
/// import its membership, heartbeat ledgers and job tables at a bumped
/// fencing epoch, let the surviving PNAs redial in, and wait for every
/// adopted in-flight job to finish before the usual shutdown broadcast.
fn headend_standby(p: &Parsed, listen: std::net::SocketAddr) -> Result<String, ArgError> {
    use oddci_live::{HeadendMode, LiveConfig, LiveOddci};
    use std::time::{Duration, Instant};

    let dir = std::path::PathBuf::from(p.get("standby").expect("caller checked"));
    let pnas: u64 = p.num("pnas", 3)?;
    let shards: usize = p.num("shards", 2)?;
    let dispatch: usize = p.num("dispatch", 2)?;
    let batch: usize = p.num("batch", 8)?;
    let seed: u64 = p.num("seed", 42)?;
    let timeout_secs: u64 = p.num("timeout", 120)?;
    let snapshot_interval_ms: u64 = p.num("snapshot-interval-ms", 500)?;
    if pnas == 0 || timeout_secs == 0 || snapshot_interval_ms == 0 {
        return Err(ArgError(
            "--pnas, --timeout and --snapshot-interval-ms must be positive".into(),
        ));
    }
    let snap_path = dir.join(oddci_live::SNAPSHOT_FILE);
    let snap = oddci_live::snapshot::read_file(&snap_path)
        .map_err(|e| ArgError(format!("cannot read snapshot {}: {e}", snap_path.display())))?;
    let mode = HeadendMode::Socket {
        listen,
        shards,
        dispatch,
        batch,
    };
    mode.validate().map_err(ArgError)?;

    let standby = LiveOddci::start_standby(
        LiveConfig {
            nodes: pnas,
            seed,
            mode,
            // The standby keeps snapshotting into the same directory, so
            // a second failover has fresh state to adopt.
            snapshot_dir: Some(dir),
            snapshot_interval: Duration::from_millis(snapshot_interval_ms),
            ..Default::default()
        },
        &snap,
    )
    .map_err(|e| ArgError(format!("standby failed to adopt: {e}")))?;
    let addr = standby
        .wire_addr()
        .expect("socket mode exposes its address");
    let epoch = standby.epoch();

    let deadline = Instant::now() + Duration::from_secs(timeout_secs);
    let jobs = standby.running_jobs();
    let mut tasks_completed = 0u64;
    let mut requeues = 0u64;
    for req in &jobs {
        match standby.wait_job(*req, deadline.saturating_duration_since(Instant::now())) {
            Some(outcome) => {
                tasks_completed += outcome.report.tasks_completed;
                requeues += outcome.report.requeues;
            }
            None => {
                standby.shutdown();
                return Err(ArgError(format!(
                    "adopted job {req:?} did not complete within {timeout_secs}s \
                     — are the surviving PNAs redialing {addr}?"
                )));
            }
        }
    }
    // Hold the shutdown broadcast until every surviving PNA has redialed
    // and re-acked, so none is stranded against a dead address.
    let reconnect_deadline = Instant::now() + Duration::from_secs(5);
    while standby.wire_stats().is_some_and(|s| s.accepted < pnas) {
        if Instant::now() >= reconnect_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = standby
        .wire_stats()
        .expect("socket mode exposes wire stats");
    let shutdown = standby.shutdown();

    if p.flag("json") {
        let v = serde_json::json!({
            "listen": addr.to_string(),
            "epoch": epoch,
            "snapshot_epoch": snap.epoch,
            "adopted_jobs": jobs.len(),
            "tasks_completed": tasks_completed,
            "requeues": requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "wire": {
                "accepted": stats.accepted,
                "tx_frames": stats.tx_frames,
                "rx_frames": stats.rx_frames,
                "checksum_rejects": stats.checksum_rejects,
                "resyncs": stats.resyncs,
            },
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize standby json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "standby headend on {addr}: adopted epoch {} -> {epoch}, {} in-flight job(s)",
        snap.epoch,
        jobs.len()
    );
    let _ = writeln!(out, "  completed   : {tasks_completed}");
    let _ = writeln!(out, "  requeues    : {requeues}");
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    let _ = writeln!(out, "  threads lost: {}", shutdown.threads_failed);
    let _ = writeln!(
        out,
        "  wire        : {} conn(s), {} tx / {} rx frames",
        stats.accepted, stats.tx_frames, stats.rx_frames
    );
    Ok(out)
}

/// `oddci pna`: one Processing Node Agent process. Connects to a
/// `oddci headend --listen` address, handshakes, and runs the full §3.2
/// receiver loop — wakeup, boot from the streamed image, task fetch,
/// result upload, heartbeats — until the headend broadcasts shutdown.
pub fn pna(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::wire::WirePnaConfig;

    let connect = socket_addr(p, "connect")?;
    let seed: u64 = p.num("seed", 7)?;
    let heartbeat_ms: u64 = p.num("heartbeat-ms", 150)?;
    let connect_secs: u64 = p.num("connect-timeout", 10)?;
    let reconnect_ms: u64 = p.num("reconnect-ms", 0)?;
    if heartbeat_ms == 0 || connect_secs == 0 {
        return Err(ArgError(
            "--heartbeat-ms and --connect-timeout must be positive".into(),
        ));
    }
    let mut cfg = WirePnaConfig::new(connect);
    cfg.seed = seed;
    cfg.heartbeat_interval = std::time::Duration::from_millis(heartbeat_ms);
    cfg.connect_timeout = std::time::Duration::from_secs(connect_secs);
    // 0 keeps the legacy behavior: a dead connection is a shutdown. Any
    // positive window arms the redial loop that lets a standby headend
    // adopt this node after a primary crash.
    if reconnect_ms > 0 {
        cfg.reconnect = Some(std::time::Duration::from_millis(reconnect_ms));
    }
    let report =
        oddci_live::run_wire_pna(cfg).map_err(|e| ArgError(format!("pna on {connect}: {e}")))?;
    let stats = &report.stats;

    if p.flag("json") {
        let v = serde_json::json!({
            "node": report.node.raw(),
            "epoch": report.epoch,
            "wire": {
                "tx_frames": stats.tx_frames,
                "rx_frames": stats.rx_frames,
                "tx_messages": stats.tx_messages,
                "rx_messages": stats.rx_messages,
                "multi_chunk_rx": stats.multi_chunk_rx,
                "checksum_rejects": stats.checksum_rejects,
                "resyncs": stats.resyncs,
                "duplicates": stats.duplicates,
            },
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize pna json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "pna node {} ran to shutdown against {connect} (epoch {})",
        report.node.raw(),
        report.epoch
    );
    let _ = writeln!(
        out,
        "  wire      : {} tx / {} rx frames, {} tx / {} rx messages",
        stats.tx_frames, stats.rx_frames, stats.tx_messages, stats.rx_messages
    );
    let _ = writeln!(
        out,
        "  integrity : {} multi-chunk rx, {} checksum reject(s), {} resync(s)",
        stats.multi_chunk_rx, stats.checksum_rejects, stats.resyncs
    );
    Ok(out)
}

/// `oddci failover`: the headend-durability scenario. Boots a snapshotting
/// socket headend plus reconnecting in-process PNAs, kills the primary at
/// the first `headend-crash` opportunity in the fault plan (no goodbye —
/// the listener just dies), then boots a standby from the latest snapshot
/// on the same address and proves the job finishes with every task
/// accounted for and every PNA re-acked at the bumped epoch.
pub fn failover(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::{FaultInjector, FaultPlan};
    use oddci_live::wire::WirePnaConfig;
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let listen = match p.get("listen") {
        Some(_) => socket_addr(p, "listen")?,
        None => "127.0.0.1:0".parse().expect("loopback default"),
    };
    let pnas: u64 = p.num("pnas", 3)?;
    let queries: u64 = p.num("queries", 64)?;
    let target: u64 = p.num("target", pnas.min(3))?;
    let seed: u64 = p.num("seed", 42)?;
    let timeout_secs: u64 = p.num("timeout", 60)?;
    let snapshot_interval_ms: u64 = p.num("snapshot-interval-ms", 50)?;
    let db_len: usize = p.num("db-len", 200_000)?;
    if pnas == 0 || queries == 0 || timeout_secs == 0 || snapshot_interval_ms == 0 || db_len == 0 {
        return Err(ArgError(
            "--pnas, --queries, --timeout, --snapshot-interval-ms and --db-len \
             must be positive"
                .into(),
        ));
    }
    if target == 0 || target > pnas {
        return Err(ArgError(format!(
            "--target must be within 1..=--pnas ({pnas}), got {target}"
        )));
    }
    let plan = match p.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(ArgError)?,
        // Default: the primary is guaranteed dead half a second in.
        None => FaultPlan::parse("headend-crash=1.0@0.5..30").expect("default plan parses"),
    };
    // The kill time comes from the plan, the same way the live planes poll
    // the injector: scan `headend_crashed` on a 10 ms tick and take the
    // first hit.
    let injector = FaultInjector::new(plan, seed);
    let crash_at = (0..timeout_secs * 100)
        .map(|t| t as f64 / 100.0)
        .find(|&t| injector.headend_crashed(SimTime::from_secs_f64(t)))
        .ok_or_else(|| {
            ArgError(
                "the fault plan never crashes the headend — include e.g. \
                 `--faults headend-crash=1.0@0.5..30`"
                    .into(),
            )
        })?;

    let dir = match p.get("snapshot-dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("oddci-failover-{}", std::process::id())),
    };
    let mk_config = |listen: std::net::SocketAddr| LiveConfig {
        nodes: pnas,
        seed,
        heartbeat_interval: Duration::from_millis(60),
        mode: HeadendMode::Socket {
            listen,
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        snapshot_dir: Some(dir.clone()),
        snapshot_interval: Duration::from_millis(snapshot_interval_ms),
        ..Default::default()
    };
    mk_config(listen).mode.validate().map_err(ArgError)?;

    let primary = LiveOddci::start(mk_config(listen));
    let addr = primary.wire_addr().expect("socket headends listen");

    let pna_threads: Vec<_> = (0..pnas)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cfg = WirePnaConfig::new(addr);
                cfg.seed = 100 + i;
                cfg.heartbeat_interval = Duration::from_millis(60);
                cfg.reconnect = Some(Duration::from_secs(timeout_secs));
                oddci_live::run_wire_pna(cfg)
            })
        })
        .collect();
    let join_pnas = |threads: Vec<std::thread::JoinHandle<_>>| -> Vec<u64> {
        threads
            .into_iter()
            .filter_map(|h| h.join().ok().and_then(Result::ok))
            .map(|rep: oddci_live::WirePnaReport| rep.epoch)
            .collect()
    };

    // A database big enough (by default) that the kill genuinely lands
    // mid-job rather than after a sub-second sprint.
    let image = AlignmentImage {
        db_len,
        ..AlignmentImage::small_demo()
    };
    let job_queries: Vec<Arc<Vec<u8>>> = (0..queries)
        .map(|i| Arc::new(random_sequence(64, seed ^ i)))
        .collect();
    let submitted = Instant::now();
    let req = match primary.submit_query_job(image, job_queries, target) {
        Some(req) => req,
        None => {
            primary.shutdown();
            let _ = join_pnas(pna_threads);
            return Err(ArgError("job submission failed".into()));
        }
    };

    // Hold fire until the plan's kill time has passed AND a snapshot that
    // has seen the job exists — killing before the first export would just
    // demonstrate losing everything.
    let snap_path = dir.join(oddci_live::SNAPSHOT_FILE);
    let deadline = submitted + Duration::from_secs(timeout_secs);
    let snap = loop {
        if submitted.elapsed().as_secs_f64() >= crash_at {
            if let Ok(s) = oddci_live::snapshot::read_file(&snap_path) {
                if !s.job_queries.is_empty() {
                    break s;
                }
            }
        }
        if Instant::now() >= deadline {
            primary.shutdown();
            let _ = join_pnas(pna_threads);
            return Err(ArgError(format!(
                "no snapshot containing the job appeared within {timeout_secs}s"
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    primary.crash();

    let adopt_started = Instant::now();
    let standby = match LiveOddci::start_standby(mk_config(addr), &snap) {
        Ok(s) => s,
        Err(e) => {
            let _ = join_pnas(pna_threads);
            return Err(ArgError(format!("standby failed to adopt: {e}")));
        }
    };
    let adopt_ms = adopt_started.elapsed().as_secs_f64() * 1e3;
    let adopted_req = standby.running_jobs().contains(&req);
    let standby_epoch = standby.epoch();

    let outcome = standby.wait_job(req, deadline.saturating_duration_since(Instant::now()));
    // Even if the job was already complete in the snapshot, hold the
    // standby open until every PNA has redialed and re-acked: shutting
    // down before they reconnect would strand them against a dead
    // address for their whole redial window.
    let reconnect_deadline = Instant::now() + Duration::from_secs(5);
    while standby.wire_stats().is_some_and(|s| s.accepted < pnas) {
        if Instant::now() >= reconnect_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let shutdown = standby.shutdown();
    let pna_epochs = join_pnas(pna_threads);
    let outcome = match outcome {
        Some(o) => o,
        None => {
            return Err(ArgError(format!(
                "job did not complete on the standby within {timeout_secs}s"
            )))
        }
    };
    let tasks_lost = queries.saturating_sub(outcome.scores.len() as u64);
    let reacked = pna_epochs.iter().filter(|&&e| e == standby_epoch).count() as u64;

    if p.flag("json") {
        let v = serde_json::json!({
            "listen": addr.to_string(),
            "pnas": pnas,
            "queries": queries,
            "target": target,
            "crash_at_secs": crash_at,
            "snapshot_epoch": snap.epoch,
            "standby_epoch": standby_epoch,
            "adopt_ms": adopt_ms,
            "adopted_running_job": adopted_req,
            "tasks_completed": outcome.report.tasks_completed,
            "tasks_lost": tasks_lost,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "pnas_reacked": reacked,
            "pna_epochs": pna_epochs,
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize failover json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "failover on {addr}: killed primary at t={crash_at:.2}s, {queries} tasks in flight"
    );
    let _ = writeln!(
        out,
        "  adoption    : epoch {} -> {standby_epoch} in {adopt_ms:.1}ms",
        snap.epoch
    );
    let _ = writeln!(out, "  completed   : {}", outcome.report.tasks_completed);
    let _ = writeln!(out, "  tasks lost  : {tasks_lost}");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    let _ = writeln!(out, "  threads lost: {}", shutdown.threads_failed);
    let _ = writeln!(
        out,
        "  PNAs        : {reacked} of {pnas} re-acked at epoch {standby_epoch}"
    );
    if tasks_lost > 0 || shutdown.tasks_unaccounted > 0 {
        return Err(ArgError(format!(
            "failover lost work: {tasks_lost} task(s) missing, {} unaccounted\n{out}",
            shutdown.tasks_unaccounted
        )));
    }
    Ok(out)
}

/// Builds the elastic-sizing policy from the shared autoscale flags
/// (`--min-instances`, `--max-instances`, `--slo-queue-depth`,
/// `--cooldown-ms`). Returns `None` when none of them were given —
/// the headend then runs with the paper's fixed-size Provider.
fn autoscale_policy(
    p: &Parsed,
    default_max: usize,
) -> Result<Option<oddci_core::AutoscalePolicy>, ArgError> {
    let given = [
        "min-instances",
        "max-instances",
        "slo-queue-depth",
        "cooldown-ms",
    ]
    .iter()
    .any(|k| p.get(k).is_some());
    if !given {
        return Ok(None);
    }
    let policy = oddci_core::AutoscalePolicy {
        min_size: p.num("min-instances", 1)?,
        max_size: p.num("max-instances", default_max)?,
        slo_queue_depth: p.num("slo-queue-depth", 4)?,
        cooldown: SimDuration::from_millis(p.num("cooldown-ms", 2_000)?),
        ..oddci_core::AutoscalePolicy::default()
    };
    policy.validate().map_err(ArgError)?;
    Ok(Some(policy))
}

/// `oddci autoscale`: the elastic-sizing drill. Boots a sharded socket
/// headend with the desired-state reconciler enabled, submits a job at
/// the *minimum* instance size, and lets the queue-depth SLO drive the
/// Provider up toward `--max-instances` and back down as the backlog
/// drains. The fault plan includes a spot-like `airtime-revoked` window
/// (the broadcaster reclaims the channel, evicting the whole
/// membership); the drill proves the reconciler absorbs it — tasks
/// requeue, a Replace re-requests the capacity, and the job finishes
/// with zero loss. Fails unless at least one scale-up AND one
/// scale-down happened.
pub fn autoscale(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::FaultPlan;
    use oddci_live::wire::WirePnaConfig;
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let listen = match p.get("listen") {
        Some(_) => socket_addr(p, "listen")?,
        None => "127.0.0.1:0".parse().expect("loopback default"),
    };
    let pnas: u64 = p.num("pnas", 6)?;
    let queries: u64 = p.num("queries", 64)?;
    let seed: u64 = p.num("seed", 42)?;
    let timeout_secs: u64 = p.num("timeout", 60)?;
    let db_len: usize = p.num("db-len", 800_000)?;
    let reconcile_ms: u64 = p.num("reconcile-ms", 25)?;
    if pnas == 0 || queries == 0 || timeout_secs == 0 || db_len == 0 || reconcile_ms == 0 {
        return Err(ArgError(
            "--pnas, --queries, --timeout, --db-len and --reconcile-ms must be positive".into(),
        ));
    }
    // The drill defaults to a tight loop: SLO of 8 queued tasks per
    // member, a short cooldown so the scale-down fits inside one job.
    let cooldown_ms: u64 = p.num("cooldown-ms", 400)?;
    let policy = oddci_core::AutoscalePolicy {
        min_size: p.num("min-instances", 2)?,
        max_size: p.num("max-instances", pnas as usize)?,
        slo_queue_depth: p.num("slo-queue-depth", 8)?,
        cooldown: SimDuration::from_millis(cooldown_ms),
        ..oddci_core::AutoscalePolicy::default()
    };
    policy.validate().map_err(ArgError)?;
    if policy.max_size as u64 > pnas {
        return Err(ArgError(format!(
            "--max-instances {} exceeds --pnas {pnas}",
            policy.max_size
        )));
    }
    let plan = match p.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(ArgError)?,
        // Default: the broadcaster reclaims the channel once, mid-job —
        // the window is narrower than the revocation gate (one cooldown),
        // so exactly one eviction fires.
        None => FaultPlan::parse("airtime-revoked=1.0@1.2..1.5").expect("default plan parses"),
    };

    let live = LiveOddci::start(LiveConfig {
        nodes: pnas,
        seed,
        heartbeat_interval: Duration::from_millis(60),
        faults: plan,
        mode: HeadendMode::Socket {
            listen,
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        autoscale: Some(policy),
        autoscale_interval: Duration::from_millis(reconcile_ms),
        ..Default::default()
    });
    let addr = live.wire_addr().expect("socket headends listen");

    let pna_threads: Vec<_> = (0..pnas)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cfg = WirePnaConfig::new(addr);
                cfg.seed = 100 + i;
                cfg.heartbeat_interval = Duration::from_millis(60);
                oddci_live::run_wire_pna(cfg)
            })
        })
        .collect();

    let image = AlignmentImage {
        db_len,
        ..AlignmentImage::small_demo()
    };
    let job_queries: Vec<Arc<Vec<u8>>> = (0..queries)
        .map(|i| Arc::new(random_sequence(64, seed ^ i)))
        .collect();
    let submitted = Instant::now();
    // Submit at the floor: the backlog against the SLO is what must pull
    // the instance up, not the operator's initial guess.
    let req = match live.submit_query_job(image, job_queries, policy.min_size as u64) {
        Some(req) => req,
        None => {
            live.shutdown();
            for t in pna_threads {
                let _ = t.join();
            }
            return Err(ArgError("job submission failed".into()));
        }
    };
    let outcome = live.wait_job(req, Duration::from_secs(timeout_secs));
    let makespan = submitted.elapsed().as_secs_f64();
    // The drained queue must pull the instance back toward the floor.
    // Completion can land inside the cooldown window, so give the
    // reconciler a few post-job windows to issue the trim before
    // declaring the run inelastic.
    let drain_deadline = Instant::now() + Duration::from_millis(cooldown_ms.saturating_mul(4));
    let export = loop {
        let export = live
            .autoscale_state()
            .expect("drill always enables the reconciler");
        if outcome.is_none() || export.scale_downs > 0 || Instant::now() >= drain_deadline {
            break export;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let revocations = live
        .telemetry()
        .registry()
        .counter("faults.airtime_revoked")
        .get();
    let shutdown = live.shutdown();
    for t in pna_threads {
        let _ = t.join();
    }
    let outcome = outcome.ok_or_else(|| {
        ArgError(format!(
            "job did not complete within {timeout_secs}s (desired {}, {} scale-up(s), \
             {} replacement(s))",
            export.desired, export.scale_ups, export.replacements
        ))
    })?;
    let tasks_lost = queries.saturating_sub(outcome.scores.len() as u64);

    if p.flag("json") {
        let v = serde_json::json!({
            "listen": addr.to_string(),
            "pnas": pnas,
            "queries": queries,
            "min_instances": policy.min_size,
            "max_instances": policy.max_size,
            "slo_queue_depth": policy.slo_queue_depth,
            "ticks": export.ticks,
            "scale_ups": export.scale_ups,
            "scale_downs": export.scale_downs,
            "replacements": export.replacements,
            "revocations": revocations,
            "final_desired": export.desired,
            "tasks_completed": outcome.report.tasks_completed,
            "tasks_lost": tasks_lost,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "makespan_secs": makespan,
        });
        let rendered = serde_json::to_string_pretty(&v).expect("serialize autoscale json");
        return check_drill(
            &export,
            revocations,
            tasks_lost,
            shutdown.tasks_unaccounted,
            rendered,
        );
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "autoscale on {addr}: {queries} tasks, instance {}..={} (SLO {} queued/member)",
        policy.min_size, policy.max_size, policy.slo_queue_depth
    );
    let _ = writeln!(
        out,
        "  reconciler  : {} tick(s), {} up / {} down / {} replacement(s), final desired {}",
        export.ticks, export.scale_ups, export.scale_downs, export.replacements, export.desired
    );
    let _ = writeln!(out, "  revocations : {revocations} (airtime reclaimed)");
    let _ = writeln!(out, "  completed   : {}", outcome.report.tasks_completed);
    let _ = writeln!(out, "  tasks lost  : {tasks_lost}");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    let _ = writeln!(out, "  threads lost: {}", shutdown.threads_failed);
    let _ = writeln!(out, "  makespan    : {makespan:.3}s");
    check_drill(
        &export,
        revocations,
        tasks_lost,
        shutdown.tasks_unaccounted,
        out,
    )
}

/// The autoscale drill's verdict: elastic both ways, revocation absorbed
/// (when the plan fired one), and no work lost.
fn check_drill(
    export: &oddci_core::AutoscaleExport,
    revocations: u64,
    tasks_lost: u64,
    unaccounted: u64,
    out: String,
) -> Result<String, ArgError> {
    if tasks_lost > 0 || unaccounted > 0 {
        return Err(ArgError(format!(
            "autoscale lost work: {tasks_lost} task(s) missing, {unaccounted} unaccounted\n{out}"
        )));
    }
    if export.scale_ups == 0 || export.scale_downs == 0 {
        return Err(ArgError(format!(
            "instance was not elastic: {} scale-up(s), {} scale-down(s)\n{out}",
            export.scale_ups, export.scale_downs
        )));
    }
    if revocations > 0 && export.replacements == 0 {
        return Err(ArgError(format!(
            "{revocations} revocation(s) fired but no replacement was issued\n{out}"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(parts: &[&str]) -> Parsed {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv).unwrap()
    }

    #[test]
    fn wakeup_matches_closed_form() {
        let out = wakeup(&parsed(&["wakeup", "--image-mb", "10", "--beta-mbps", "2"])).unwrap();
        // 10 MB @ 2 Mbps: mean = 1.5 * 10*2^20*8 / 2e6 = 62.9 s.
        assert!(out.contains("62.9"), "{out}");
    }

    #[test]
    fn wakeup_rejects_zero_beta() {
        assert!(wakeup(&parsed(&["wakeup", "--beta-mbps", "0"])).is_err());
    }

    #[test]
    fn efficiency_point_matches_paper_trend() {
        let hi = efficiency(&parsed(&[
            "efficiency",
            "--phi",
            "100000",
            "--ratio",
            "100",
        ]))
        .unwrap();
        let lo = efficiency(&parsed(&["efficiency", "--phi", "1", "--ratio", "100"])).unwrap();
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.contains("efficiency"))
                .and_then(|l| l.split(':').nth(1))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(grab(&hi) > 0.99);
        assert!(grab(&lo) < 0.1);
    }

    #[test]
    fn simulate_rejects_oversized_target() {
        let err = simulate(&parsed(&["simulate", "--nodes", "10", "--target", "20"])).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn headend_and_pna_require_their_addresses() {
        let err = headend(&parsed(&["headend"])).unwrap_err();
        assert!(err.to_string().contains("--listen"), "{err}");
        let err = pna(&parsed(&["pna"])).unwrap_err();
        assert!(err.to_string().contains("--connect"), "{err}");
        let err = headend(&parsed(&["headend", "--listen", "not-an-addr"])).unwrap_err();
        assert!(err.to_string().contains("HOST:PORT"), "{err}");
    }

    #[test]
    fn headend_rejects_oversized_target() {
        let err = headend(&parsed(&[
            "headend",
            "--listen",
            "127.0.0.1:0",
            "--pnas",
            "2",
            "--target",
            "5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--target"), "{err}");
    }

    #[test]
    fn headend_and_pna_complete_a_job_over_loopback() {
        // Reserve a free loopback port, release it, and race the headend
        // onto it — the same multi-process flow scripts/ci.sh runs, here
        // in-process so the test stays hermetic.
        let port = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                headend(&parsed(&[
                    "headend",
                    "--listen",
                    &addr,
                    "--pnas",
                    "2",
                    "--target",
                    "2",
                    "--queries",
                    "4",
                    "--json",
                ]))
            })
        };
        // The listener binds inside LiveOddci::start; give it a moment
        // before the clients dial in.
        std::thread::sleep(std::time::Duration::from_millis(200));
        // A monitoring client polls the live metrics plane while the
        // fleet joins — it never performs the hello handshake, so it
        // must not consume one of the two node identities.
        let monitor = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                top(&parsed(&[
                    "top",
                    "--connect",
                    &addr,
                    "--count",
                    "1",
                    "--json",
                ]))
            })
        };
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let seed = (100 + i).to_string();
                    pna(&parsed(&[
                        "pna",
                        "--connect",
                        &addr,
                        "--seed",
                        &seed,
                        "--heartbeat-ms",
                        "60",
                        "--json",
                    ]))
                })
            })
            .collect();

        let stats = monitor.join().unwrap().unwrap();
        let sv: serde_json::Value = serde_json::from_str(&stats).unwrap();
        match &sv["registry"]["counters"] {
            serde_json::Value::Object(entries) => assert!(!entries.is_empty(), "{stats}"),
            other => panic!("counters should be an object, got {other:?}"),
        }

        let out = server.join().unwrap().unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["tasks_completed"], 4, "{out}");
        assert_eq!(v["tasks_unaccounted"], 0, "{out}");
        assert_eq!(v["threads_failed"], 0, "{out}");
        assert!(v["wire"]["multi_chunk_tx"].as_u64().unwrap() >= 1, "{out}");
        assert_eq!(v["wire"]["checksum_rejects"], 0, "{out}");
        // Per-connection rows: at least the two PNAs plus the monitor.
        assert!(v["connections"].as_array().unwrap().len() >= 3, "{out}");

        for client in clients {
            let out = client.join().unwrap().unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert!(v["wire"]["rx_messages"].as_u64().unwrap() > 0, "{out}");
            assert!(v["wire"]["multi_chunk_rx"].as_u64().unwrap() >= 1, "{out}");
        }
    }

    #[test]
    fn top_renders_dashes_until_a_counter_has_two_samples() {
        use oddci_telemetry::RegistrySnapshot;
        let mut first = RegistrySnapshot::default();
        first.counters.insert("wire.tx_frames".into(), 1_000);

        // First poll: no previous snapshot at all — everything is `-`.
        let out = render_top(&first, &[], None, 0.0);
        let row = out.lines().find(|l| l.contains("wire.tx_frames")).unwrap();
        assert!(row.contains('-'), "{out}");
        assert!(
            !row.contains('+'),
            "first poll must not fake a delta: {out}"
        );

        // Second poll: the counter has a baseline, but a *new* counter
        // (a fault class that just fired) does not. The old one gets a
        // real delta and rate; the new one stays `-` — deltaing its
        // lifetime value against zero would print a garbage rate.
        let mut second = RegistrySnapshot::default();
        second.counters.insert("wire.tx_frames".into(), 1_500);
        second
            .counters
            .insert("faults.airtime_revoked".into(), 7_777);
        let out = render_top(&second, &[], Some(&first), 2.0);
        let old = out.lines().find(|l| l.contains("wire.tx_frames")).unwrap();
        assert!(old.contains("+500"), "{out}");
        assert!(old.contains("250.0"), "{out}");
        let fresh = out
            .lines()
            .find(|l| l.contains("faults.airtime_revoked"))
            .unwrap();
        assert!(!fresh.contains('+'), "{out}");
        assert!(
            !fresh.contains("3888"),
            "7777/2s garbage rate leaked through: {out}"
        );
    }

    #[test]
    fn autoscale_drill_scales_both_ways_without_loss() {
        let out = autoscale(&parsed(&[
            "autoscale",
            "--pnas",
            "4",
            "--queries",
            "32",
            "--db-len",
            "400000",
            "--max-instances",
            "4",
            "--cooldown-ms",
            "250",
            "--faults",
            "airtime-revoked=1.0@0.15..0.45",
            "--json",
        ]))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(v["scale_ups"].as_u64().unwrap() >= 1, "{out}");
        assert!(v["scale_downs"].as_u64().unwrap() >= 1, "{out}");
        assert!(v["replacements"].as_u64().unwrap() >= 1, "{out}");
        assert_eq!(v["tasks_lost"], 0, "{out}");
        assert_eq!(v["tasks_unaccounted"], 0, "{out}");
        assert_eq!(v["tasks_completed"], 32, "{out}");
    }

    #[test]
    fn autoscale_rejects_inconsistent_bounds() {
        let err = autoscale(&parsed(&[
            "autoscale",
            "--pnas",
            "2",
            "--max-instances",
            "5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--max-instances"), "{err}");
        let err = autoscale(&parsed(&["autoscale", "--min-instances", "0"])).unwrap_err();
        assert!(err.to_string().contains("min_size"), "{err}");
    }

    #[test]
    fn check_lists_scenarios() {
        let out = check(&parsed(&["check", "--list"])).unwrap();
        assert!(out.contains("shutdown-under-active-sink"), "{out}");
        assert!(out.contains("expect-clean"), "{out}");
        assert!(out.contains("expect-fail"), "{out}");
    }

    #[test]
    fn check_rejects_unknown_scenario_and_bare_replay() {
        let err = check(&parsed(&["check", "--scenario", "no-such-thing"])).unwrap_err();
        assert!(err.to_string().contains("unknown scenario"));
        let err = check(&parsed(&["check", "--replay", "s11:0.1"])).unwrap_err();
        assert!(err.to_string().contains("requires --scenario"));
    }

    #[test]
    fn check_models_one_buggy_scenario_and_replays_it() {
        // The torn-snapshot scenario must be caught (it is the detector
        // sensitivity canary) and its printed schedule must replay.
        let out = check(&parsed(&[
            "check",
            "--skip-lint",
            "--scenario",
            "sink-stats-snapshot-torn",
            "--schedules",
            "400",
        ]))
        .unwrap();
        assert!(out.contains("detector caught"), "{out}");
        let schedule = out
            .split("replay ")
            .nth(1)
            .expect("replay schedule in output")
            .trim();
        let replayed = check(&parsed(&[
            "check",
            "--scenario",
            "sink-stats-snapshot-torn",
            "--replay",
            schedule,
        ]))
        .unwrap();
        assert!(replayed.contains("failure reproduced"), "{replayed}");
    }
}
