//! The subcommand implementations.

use crate::args::{ArgError, Parsed};
use oddci_analytics::{efficiency as eq2, makespan, wakeup_envelope, InstanceParams};
use oddci_core::world::ChurnConfig;
use oddci_core::{World, WorldConfig};
use oddci_types::{Bandwidth, DataSize, SimDuration, SimTime};
use oddci_workload::alignment::random_sequence;
use oddci_workload::{JobGenerator, JobProfile};
use std::fmt::Write;

/// `oddci simulate`: run a full world for one job.
pub fn simulate(p: &Parsed) -> Result<String, ArgError> {
    let nodes: u64 = p.num("nodes", 1_000)?;
    let target: u64 = p.num("target", 100)?;
    let tasks: u64 = p.num("tasks", 500)?;
    let cost_secs: f64 = p.num("cost-secs", 60.0)?;
    let image_mb: u64 = p.num("image-mb", 4)?;
    let seed: u64 = p.num("seed", 42)?;
    let churn = p.pair("churn")?;
    if target > nodes {
        return Err(ArgError(format!(
            "--target {target} exceeds --nodes {nodes}"
        )));
    }

    let cfg = WorldConfig {
        nodes,
        churn: churn.map(|(on, off)| ChurnConfig {
            mean_on: SimDuration::from_mins(on),
            mean_off: SimDuration::from_mins(off),
        }),
        ..Default::default()
    };

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(image_mb),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);
    let profile = job.profile();

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;
    let metrics = sim.world().metrics().snapshot();
    let predicted = makespan(&profile, &InstanceParams::paper(target));

    if p.flag("json") {
        let v = serde_json::json!({
            "nodes": nodes,
            "target": target,
            "tasks_completed": report.tasks_completed,
            "makespan_secs": report.makespan.as_secs_f64(),
            "model_makespan_secs": predicted.as_secs_f64(),
            "requeues": report.requeues,
            "wakeup_broadcasts": report.wakeup_broadcasts,
            "mean_wakeup_latency_secs": metrics.wakeup_latency.mean,
            "joins": metrics.joins,
        });
        return Ok(serde_json::to_string_pretty(&v).expect("json"));
    }

    let mut out = String::new();
    let _ = writeln!(out, "OddCI-DTV simulation (seed {seed})");
    let _ = writeln!(out, "  audience          : {nodes} receivers");
    let _ = writeln!(out, "  instance          : {target} nodes");
    let _ = writeln!(out, "  job               : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(
        out,
        "  completed         : {} tasks",
        report.tasks_completed
    );
    let _ = writeln!(out, "  makespan          : {}", report.makespan);
    let _ = writeln!(out, "  model (eq. 1)     : {predicted}");
    let _ = writeln!(out, "  wakeup broadcasts : {}", report.wakeup_broadcasts);
    let _ = writeln!(out, "  requeues (churn)  : {}", report.requeues);
    let _ = writeln!(
        out,
        "  mean node wakeup  : {:.1}s over {} joins",
        metrics.wakeup_latency.mean, metrics.joins
    );
    Ok(out)
}

/// `oddci chaos`: run one simulation under an injected-fault plan and
/// report how the control plane coped.
pub fn chaos(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::{FaultClass, FaultPlan};

    let nodes: u64 = p.num("nodes", 500)?;
    let target: u64 = p.num("target", 100)?;
    let tasks: u64 = p.num("tasks", 300)?;
    let cost_secs: f64 = p.num("cost-secs", 30.0)?;
    let seed: u64 = p.num("seed", 42)?;
    let intensity: f64 = p.num("intensity", 1.0)?;
    if target > nodes {
        return Err(ArgError(format!(
            "--target {target} exceeds --nodes {nodes}"
        )));
    }
    if !(0.0..=10.0).contains(&intensity) {
        return Err(ArgError("--intensity must be in [0, 10]".into()));
    }
    let plan = match p.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(ArgError)?,
        None => FaultPlan::standard_mix(),
    }
    .scaled(intensity);

    let cfg = WorldConfig {
        nodes,
        faults: plan.clone(),
        ..Default::default()
    };

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;
    let metrics = sim.world().metrics().snapshot();

    if p.flag("json") {
        let v = serde_json::json!({
            "nodes": nodes,
            "target": target,
            "intensity": intensity,
            "tasks_completed": report.tasks_completed,
            "makespan_secs": report.makespan.as_secs_f64(),
            "requeues": metrics.requeues,
            "task_fetch_retries": metrics.task_fetch_retries,
            "fetch_aborts": metrics.fetch_aborts,
            "faults": serde_json::to_value(&metrics.faults).expect("counters"),
        });
        return Ok(serde_json::to_string_pretty(&v).expect("json"));
    }

    let mut out = String::new();
    let _ = writeln!(out, "OddCI chaos run (seed {seed}, intensity {intensity})");
    let _ = writeln!(out, "  audience          : {nodes} receivers");
    let _ = writeln!(out, "  instance          : {target} nodes");
    let _ = writeln!(out, "  job               : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(
        out,
        "  completed         : {} tasks",
        report.tasks_completed
    );
    let _ = writeln!(out, "  makespan          : {}", report.makespan);
    let _ = writeln!(out, "  requeues          : {}", metrics.requeues);
    let _ = writeln!(out, "  fetch retries     : {}", metrics.task_fetch_retries);
    let _ = writeln!(out, "  retry chains dead : {}", metrics.fetch_aborts);
    let _ = writeln!(
        out,
        "  injected faults   : {} total",
        metrics.faults.total()
    );
    for class in FaultClass::ALL {
        let n = metrics.faults.get(class);
        if n > 0 {
            let _ = writeln!(out, "    {:<22}: {n}", class.label());
        }
    }
    if plan.is_empty() {
        let _ = writeln!(out, "  (empty fault plan — this was a calm run)");
    }
    Ok(out)
}

/// Companion Chrome artifact path for a streamed JSONL path:
/// `x.trace.jsonl` → `x.trace.stream.json`.
fn chrome_stream_path(jsonl_path: &str) -> String {
    let stem = jsonl_path.strip_suffix(".jsonl").unwrap_or(jsonl_path);
    format!("{stem}.stream.json")
}

/// Build a streaming sink writing JSONL at `jsonl_path` plus the derived
/// Chrome artifact, stamped with scenario/seed metadata.
fn open_stream_sink(
    jsonl_path: &str,
    lanes: usize,
    scenario: &str,
    seed: u64,
    plane: &str,
) -> Result<std::sync::Arc<oddci_telemetry::StreamingSink>, ArgError> {
    let path = std::path::Path::new(jsonl_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("cannot create `{}`: {e}", parent.display())))?;
        }
    }
    oddci_telemetry::StreamingSink::builder()
        .jsonl(jsonl_path)
        .chrome(chrome_stream_path(jsonl_path))
        .lanes(lanes)
        .meta("scenario", scenario)
        .meta("seed", seed.to_string())
        .meta("plane", plane)
        .start()
        .map_err(|e| ArgError(format!("cannot open stream `{jsonl_path}`: {e}")))
}

/// Render the one-line summary of a finished sink.
fn stream_summary_line(summary: &oddci_telemetry::SinkSummary) -> String {
    let files = summary
        .outputs
        .iter()
        .map(|o| format!("{} ({} B)", o.path.display(), o.bytes))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{} emitted, {} persisted, {} dropped, {} flushes -> {files}",
        summary.stats.emitted,
        summary.stats.persisted,
        summary.stats.dropped,
        summary.stats.flushes
    )
}

/// `oddci trace`: run one scenario with event recording enabled, export a
/// Chrome `trace_event` file and print the per-phase latency breakdown.
/// With `--stream <path>` the run *also* streams every event to disk as
/// it happens (JSONL + Chrome), and the `W = 1.5·I/β` agreement check is
/// recomputed from the streamed artifact instead of the in-memory ring.
pub fn trace(p: &Parsed) -> Result<String, ArgError> {
    use oddci_faults::FaultPlan;
    use oddci_telemetry::{export, Phase, Telemetry};

    let scenario = p.get("scenario").unwrap_or("small");
    let out_path = p.get("out").unwrap_or("results/trace.json");
    let stream_path = p.get("stream");
    let seed: u64 = p.num("seed", 42)?;

    // Scenario presets sized so even `chaos` finishes in seconds.
    let (nodes, target, tasks, cost_secs, image_mb, faults) = match scenario {
        "small" => (100u64, 30u64, 60u64, 10.0f64, 1u64, FaultPlan::none()),
        "standard" => (500, 100, 300, 30.0, 4, FaultPlan::none()),
        "chaos" => (200, 50, 120, 15.0, 2, FaultPlan::standard_mix()),
        other => {
            return Err(ArgError(format!(
                "unknown scenario `{other}` (expected small | standard | chaos)"
            )))
        }
    };

    let sink = match stream_path {
        Some(path) => Some(open_stream_sink(path, 4, scenario, seed, "sim")?),
        None => None,
    };
    let mut tele = Telemetry::recording();
    if let Some(sink) = &sink {
        tele = tele.with_sink(sink.clone());
    }
    let cfg = WorldConfig {
        nodes,
        faults,
        telemetry: tele.clone(),
        ..Default::default()
    };
    let beta = cfg.dtv.beta;

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(image_mb),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(cost_secs),
        seed,
    )
    .generate(tasks);

    let mut sim = World::simulation(cfg, seed);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .ok_or_else(|| ArgError("job did not complete within a simulated year".into()))?;

    let events = tele.events();
    let trace_json = export::chrome_trace(&events);
    let path = std::path::Path::new(out_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("cannot create `{}`: {e}", parent.display())))?;
        }
    }
    std::fs::write(path, &trace_json)
        .map_err(|e| ArgError(format!("cannot write `{out_path}`: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "OddCI trace (scenario {scenario}, seed {seed})");
    let _ = writeln!(out, "  audience   : {nodes} receivers, instance {target}");
    let _ = writeln!(out, "  job        : {tasks} tasks x {cost_secs}s");
    let _ = writeln!(out, "  makespan   : {}", report.makespan);
    let _ = writeln!(out, "  trace      : {} events -> {out_path}", events.len());
    let streamed_events = match (&sink, stream_path) {
        (Some(sink), Some(path)) => {
            let summary = sink
                .finish()
                .map_err(|e| ArgError(format!("stream writer failed: {e}")))?;
            let _ = writeln!(out, "  streamed   : {}", stream_summary_line(&summary));
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read back `{path}`: {e}")))?;
            let (_, evs) = oddci_telemetry::sink::read_jsonl_events(&text)
                .map_err(|e| ArgError(format!("invalid stream `{path}`: {e}")))?;
            Some(evs)
        }
        _ => None,
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (label, s) in tele.phase_breakdown() {
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s",
            label, s.count, s.mean, s.p50, s.p90, s.p99, s.max
        );
    }

    // Wakeup agreement: the measured wakeup is wait-for-config plus image
    // read; the §5.1 mean W = 1.5·I/β covers the image-only carousel, so
    // the measured mean should land inside the [best, worst] envelope
    // widened by the small PNA/config files sharing the cycle. When
    // streaming, the components are recomputed from the on-disk artifact
    // — the check the ring cannot support once it wraps.
    let mean_us = |durs: &[u64]| -> f64 {
        if durs.is_empty() {
            0.0
        } else {
            durs.iter().sum::<u64>() as f64 / durs.len() as f64 / 1e6
        }
    };
    let (source, wait_mean, boot_mean) = match &streamed_events {
        Some(evs) => {
            use oddci_telemetry::sink::span_durations_us;
            (
                "streamed trace",
                mean_us(&span_durations_us(evs, Phase::WakeupWait)),
                mean_us(&span_durations_us(evs, Phase::DveBoot)),
            )
        }
        None => (
            "ring",
            tele.phase_summary(Phase::WakeupWait).mean,
            tele.phase_summary(Phase::DveBoot).mean,
        ),
    };
    let measured = wait_mean + boot_mean;
    let (_, w_mean, _) = wakeup_envelope(DataSize::from_megabytes(image_mb), beta);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  wakeup ({source}): measured {measured:.1}s (wait {wait_mean:.1}s + boot {boot_mean:.1}s) vs W = 1.5·I/β = {:.1}s ({:+.0}%)",
        w_mean.as_secs_f64(),
        100.0 * (measured - w_mean.as_secs_f64()) / w_mean.as_secs_f64()
    );
    Ok(out)
}

/// `oddci wakeup`: the §5.1 envelope.
pub fn wakeup(p: &Parsed) -> Result<String, ArgError> {
    let image_mb: u64 = p.num("image-mb", 8)?;
    let beta_mbps: f64 = p.num("beta-mbps", 1.0)?;
    if beta_mbps <= 0.0 {
        return Err(ArgError("--beta-mbps must be positive".into()));
    }
    let image = DataSize::from_megabytes(image_mb);
    let beta = Bandwidth::from_mbps(beta_mbps);
    let (best, mean, worst) = wakeup_envelope(image, beta);
    Ok(format!(
        "wakeup envelope for a {image_mb} MB image at {beta_mbps} Mbps spare capacity:\n  \
         best  (attach at image start) : {:.1}s\n  \
         mean  (W = 1.5·I/β)           : {:.1}s\n  \
         worst (just missed the start) : {:.1}s\n  \
         independent of instance size: broadcast reaches every tuned receiver at once\n",
        best.as_secs_f64(),
        mean.as_secs_f64(),
        worst.as_secs_f64()
    ))
}

/// `oddci efficiency`: equations (1) and (2) at a point.
pub fn efficiency(p: &Parsed) -> Result<String, ArgError> {
    let phi: f64 = p.num("phi", 1_000.0)?;
    let ratio: f64 = p.num("ratio", 100.0)?;
    let nodes: u64 = p.num("nodes", 1_000)?;
    if phi <= 0.0 || ratio <= 0.0 || nodes == 0 {
        return Err(ArgError(
            "--phi, --ratio and --nodes must be positive".into(),
        ));
    }
    let params = InstanceParams::paper(nodes);
    let n = (ratio * nodes as f64).round() as u64;
    let profile = JobProfile::from_suitability(
        DataSize::from_megabytes(10),
        n.max(1),
        DataSize::from_bytes(1_000),
        params.delta,
        phi,
    );
    let m = makespan(&profile, &params);
    let e = eq2(&profile, &params);
    Ok(format!(
        "paper scenario (I=10MB, β=1Mbps, δ=150Kbps, s+r=1KB):\n  \
         suitability Φ       : {phi}\n  \
         n/N                 : {ratio} ({n} tasks on {nodes} nodes)\n  \
         task cost implied   : {:.1}s\n  \
         makespan (eq. 1)    : {}\n  \
         efficiency (eq. 2)  : {e:.4}\n",
        profile.mean_cost.as_secs_f64(),
        m
    ))
}

/// `oddci live`: the thread-based demo.
pub fn live(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, LiveConfig, LiveOddci};
    let nodes: u64 = p.num("nodes", 4)?;
    let queries: u64 = p.num("queries", 8)?;
    let target: u64 = p.num("target", 3)?;
    if nodes == 0 || queries == 0 || target == 0 {
        return Err(ArgError(
            "--nodes, --queries and --target must be positive".into(),
        ));
    }
    let live = LiveOddci::start(LiveConfig {
        nodes,
        ..Default::default()
    });
    let outcome = live
        .run_alignment_job(
            AlignmentImage::small_demo(),
            queries,
            target,
            std::time::Duration::from_secs(120),
        )
        .ok_or_else(|| ArgError("live job did not complete within 120s".into()))?;
    live.shutdown();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "live OddCI run: {} receiver threads, instance {target}",
        nodes
    );
    let _ = writeln!(out, "  makespan : {}", outcome.report.makespan);
    let _ = writeln!(out, "  task      score  kind");
    for (task, score) in &outcome.scores {
        let _ = writeln!(
            out,
            "  {:<9} {:>5}  {}",
            task.to_string(),
            score,
            if task.raw() % 2 == 0 {
                "planted homolog"
            } else {
                "random noise"
            }
        );
    }
    Ok(out)
}

/// `oddci soak`: stress the live headend and report task throughput.
///
/// Runs one alignment job with a deliberately small database so each task
/// is cheap: throughput is then dominated by headend round trips, which is
/// exactly what the sharded architecture changes. `--single-loop` selects
/// the pre-sharding baseline headend for comparison.
pub fn soak(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
    use oddci_telemetry::Telemetry;

    let shards: usize = p.num("shards", 4)?;
    let dispatch: usize = p.num("dispatch", shards.clamp(1, 4))?;
    let batch: usize = p.num("batch", 16)?;
    let nodes: u64 = p.num("nodes", 8)?;
    let queries: u64 = p.num("queries", 512)?;
    let target: u64 = p.num("target", nodes)?;
    let seed: u64 = p.num("seed", 42)?;
    let mode = if p.flag("single-loop") {
        HeadendMode::SingleLoop
    } else {
        HeadendMode::Sharded {
            shards,
            dispatch,
            batch,
        }
    };
    // Degenerate pool sizes (`--shards 0`, oversized batches, …) must be
    // a clear argument error, never a runtime panic.
    mode.validate().map_err(ArgError)?;
    if nodes == 0 || queries == 0 {
        return Err(ArgError("--nodes and --queries must be positive".into()));
    }
    if target == 0 || target > nodes {
        return Err(ArgError(format!(
            "--target must be within 1..=--nodes ({nodes}), got {target}"
        )));
    }

    // A tiny database plus short random queries keeps each task a cheap
    // index scan (a few µs), so the soak measures headend round trips —
    // the thing sharding changes — rather than alignment arithmetic.
    let image = AlignmentImage {
        db_len: 400,
        ..AlignmentImage::small_demo()
    };
    let work: Vec<std::sync::Arc<Vec<u8>>> = (0..queries)
        .map(|i| std::sync::Arc::new(random_sequence(16, seed ^ i)))
        .collect();
    // One sink lane per headend thread (carousel + shards + dispatch)
    // so their trace offers never contend; see ShardedHeadend::start.
    let sink = match p.get("trace-out") {
        Some(path) => {
            let lanes = match mode {
                HeadendMode::SingleLoop => 2,
                HeadendMode::Sharded { .. } | HeadendMode::Socket { .. } => 1 + shards + dispatch,
            };
            Some(open_stream_sink(path, lanes, "soak", seed, "live")?)
        }
        None => None,
    };
    let mut tele = Telemetry::recording();
    if let Some(sink) = &sink {
        tele = tele.with_sink(sink.clone());
    }
    let live = LiveOddci::start(LiveConfig {
        nodes,
        seed,
        telemetry: tele.clone(),
        mode,
        ..Default::default()
    });
    let outcome = live
        .run_query_job(image, work, target, std::time::Duration::from_secs(300))
        .ok_or_else(|| ArgError("soak job did not complete within 300s".into()))?;
    // shutdown() joins every thread and flushes the sink before reporting.
    let shutdown = live.shutdown();
    let stream_summary = match &sink {
        Some(sink) => Some(
            sink.finish()
                .map_err(|e| ArgError(format!("stream writer failed: {e}")))?,
        ),
        None => None,
    };

    let makespan = outcome.report.makespan.as_secs_f64();
    let throughput = queries as f64 / makespan.max(1e-9);
    let snapshot = tele.metrics_snapshot();

    if p.flag("json") {
        let mut v = serde_json::json!({
            "mode": if matches!(mode, HeadendMode::SingleLoop) { "single-loop" } else { "sharded" },
            "shards": if matches!(mode, HeadendMode::SingleLoop) { 0 } else { shards },
            "dispatch": if matches!(mode, HeadendMode::SingleLoop) { 0 } else { dispatch },
            "batch": if matches!(mode, HeadendMode::SingleLoop) { 1 } else { batch },
            "nodes": nodes,
            "queries": queries,
            "target": target,
            "makespan_secs": makespan,
            "throughput_tasks_per_sec": throughput,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "gauges": snapshot.gauges,
        });
        if let (serde_json::Value::Object(entries), Some(s)) = (&mut v, &stream_summary) {
            entries.push((
                "stream".to_string(),
                serde_json::json!({
                    "emitted": s.stats.emitted,
                    "persisted": s.stats.persisted,
                    "dropped": s.stats.dropped,
                    "flushes": s.stats.flushes,
                }),
            ));
        }
        return Ok(serde_json::to_string_pretty(&v).expect("serialize soak json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "live soak: {nodes} receiver threads, instance {target}, {queries} tasks"
    );
    let _ = match mode {
        HeadendMode::SingleLoop => writeln!(out, "  headend     : single-loop baseline"),
        HeadendMode::Sharded { .. } | HeadendMode::Socket { .. } => writeln!(
            out,
            "  headend     : sharded ({shards} shards, {dispatch} dispatch, batch {batch})"
        ),
    };
    let _ = writeln!(out, "  makespan    : {:.3}s", makespan);
    let _ = writeln!(out, "  throughput  : {throughput:.1} tasks/s");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    if shutdown.threads_failed > 0 {
        let _ = writeln!(out, "  PANICKED    : {} thread(s)", shutdown.threads_failed);
    }
    if let Some(summary) = &stream_summary {
        let _ = writeln!(out, "  streamed    : {}", stream_summary_line(summary));
    }
    let lags: Vec<(&String, &f64)> = snapshot
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("controller.heartbeat_lag."))
        .collect();
    if !lags.is_empty() {
        let _ = writeln!(out, "  heartbeat lag (last beat, s):");
        for (name, lag) in lags {
            let shard = name.rsplit('.').next().unwrap_or(name);
            let _ = writeln!(out, "    {shard:<8} {lag:.3}");
        }
    }
    Ok(out)
}

/// `oddci check`: the concurrency gate — workspace lint plus bounded
/// model checking of the scaled-down headend scenarios. With `--replay`
/// it re-executes one pinned interleaving instead (for reproducing a
/// schedule printed by an earlier run or by CI).
///
/// Any lint violation, any failure in an `expect-clean` scenario, and
/// any `expect-fail` scenario the detector stops catching (a sensitivity
/// regression) all surface as errors, so `oddci check` exits nonzero.
pub fn check(p: &Parsed) -> Result<String, ArgError> {
    use oddci_check::explore::Explorer;
    use oddci_check::{lint, scenarios};

    let seed: u64 = p.num("seed", 11)?;
    let schedules: usize = p.num("schedules", 400)?;
    if schedules == 0 {
        return Err(ArgError("--schedules must be positive".into()));
    }

    if p.flag("list") {
        let mut out = String::new();
        for s in scenarios::ALL {
            let _ = writeln!(
                out,
                "{:36} {}",
                s.name,
                if s.expect_clean {
                    "expect-clean"
                } else {
                    "expect-fail"
                }
            );
        }
        return Ok(out);
    }

    let selected: Vec<&scenarios::Scenario> = match p.get("scenario") {
        Some(name) => {
            let s = scenarios::by_name(name).ok_or_else(|| {
                ArgError(format!(
                    "unknown scenario `{name}` — `oddci check --list` shows them"
                ))
            })?;
            vec![s]
        }
        None => scenarios::ALL.iter().collect(),
    };

    if let Some(schedule) = p.get("replay") {
        let [s] = selected[..] else {
            return Err(ArgError("--replay requires --scenario NAME".into()));
        };
        let outcome = Explorer::new(seed).replay(schedule, s.setup);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay {} under {} ({} step(s))",
            s.name, outcome.schedule, outcome.steps
        );
        match outcome.failure {
            Some(msg) => {
                let _ = writeln!(out, "failure reproduced:\n{msg}");
            }
            None => {
                let _ = writeln!(out, "no failure under this interleaving");
            }
        }
        return Ok(out);
    }

    let mut out = String::new();
    if !p.flag("skip-lint") {
        let root = lint::find_root(std::path::Path::new(".")).ok_or_else(|| {
            ArgError(
                "no workspace root at or above the current directory — \
                 run from inside the repository or pass --skip-lint"
                    .into(),
            )
        })?;
        let violations = lint::run(&root).map_err(|e| ArgError(format!("lint failed: {e}")))?;
        if !violations.is_empty() {
            let mut msg = format!("lint: {} violation(s)\n", violations.len());
            for v in &violations {
                let _ = writeln!(msg, "  {v}");
            }
            return Err(ArgError(msg));
        }
        let _ = writeln!(out, "lint : clean");
    }

    let mut failures: Vec<String> = Vec::new();
    for s in selected {
        let result = Explorer::new(seed)
            .max_schedules(schedules)
            .explore(s.setup);
        match (&result.failure, s.expect_clean) {
            (None, true) => {
                let _ = writeln!(
                    out,
                    "ok   {:36} clean over {} schedule(s){}",
                    s.name,
                    result.schedules,
                    if result.exhausted { " (exhausted)" } else { "" },
                );
            }
            (Some(f), false) => {
                let _ = writeln!(
                    out,
                    "ok   {:36} detector caught after {} schedule(s) — replay {}",
                    s.name, result.schedules, f.schedule
                );
            }
            (Some(f), true) => {
                failures.push(format!(
                    "{}: failure in supposedly-correct protocol: {} — replay with \
                     `oddci check --scenario {} --seed {seed} --replay {}`",
                    s.name, f.message, s.name, f.schedule
                ));
            }
            (None, false) => {
                failures.push(format!(
                    "{}: detector missed the seeded bug within {} schedule(s) \
                     (sensitivity regression)",
                    s.name, result.schedules
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(ArgError(failures.join("\n")))
    }
}

/// Parses a required `--name HOST:PORT` socket address option.
fn socket_addr(p: &Parsed, name: &str) -> Result<std::net::SocketAddr, ArgError> {
    let raw = p.get(name).ok_or_else(|| {
        ArgError(format!(
            "`--{name} HOST:PORT` is required (e.g. --{name} 127.0.0.1:7800)"
        ))
    })?;
    raw.parse()
        .map_err(|_| ArgError(format!("`--{name}` expects HOST:PORT, got `{raw}`")))
}

/// `oddci headend`: the socket-backed live plane's server half. Binds a
/// TCP listener, waits for `oddci pna --connect` processes to join, runs
/// one alignment job over the wire (wakeup image streamed in checksummed
/// chunks, heartbeats on the direct channels) and reports the outcome
/// plus transport counters.
pub fn headend(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};

    let listen = socket_addr(p, "listen")?;
    let pnas: u64 = p.num("pnas", 3)?;
    let queries: u64 = p.num("queries", 8)?;
    let target: u64 = p.num("target", pnas.min(3))?;
    let shards: usize = p.num("shards", 2)?;
    let dispatch: usize = p.num("dispatch", 2)?;
    let batch: usize = p.num("batch", 8)?;
    let seed: u64 = p.num("seed", 42)?;
    let timeout_secs: u64 = p.num("timeout", 120)?;
    let db_len: usize = p.num("db-len", 20_000)?;
    if pnas == 0 || queries == 0 || db_len == 0 || timeout_secs == 0 {
        return Err(ArgError(
            "--pnas, --queries, --db-len and --timeout must be positive".into(),
        ));
    }
    if target == 0 || target > pnas {
        return Err(ArgError(format!(
            "--target must be within 1..=--pnas ({pnas}), got {target}"
        )));
    }
    let mode = HeadendMode::Socket {
        listen,
        shards,
        dispatch,
        batch,
    };
    mode.validate().map_err(ArgError)?;

    let live = LiveOddci::start(LiveConfig {
        nodes: pnas,
        seed,
        mode,
        ..Default::default()
    });
    let addr = live.wire_addr().expect("socket mode exposes its address");
    let image = AlignmentImage {
        db_len,
        ..AlignmentImage::small_demo()
    };
    let outcome = match live.run_alignment_job(
        image,
        queries,
        target,
        std::time::Duration::from_secs(timeout_secs),
    ) {
        Some(outcome) => outcome,
        None => {
            live.shutdown();
            return Err(ArgError(format!(
                "job did not complete within {timeout_secs}s — are {target}+ \
                 `oddci pna --connect {addr}` processes running?"
            )));
        }
    };
    let stats = live.wire_stats().expect("socket mode exposes wire stats");
    let shutdown = live.shutdown();
    let makespan = outcome.report.makespan.as_secs_f64();

    if p.flag("json") {
        let v = serde_json::json!({
            "listen": addr.to_string(),
            "pnas": pnas,
            "target": target,
            "queries": queries,
            "tasks_completed": outcome.report.tasks_completed,
            "makespan_secs": makespan,
            "requeues": outcome.report.requeues,
            "tasks_unaccounted": shutdown.tasks_unaccounted,
            "threads_failed": shutdown.threads_failed,
            "wire": {
                "accepted": stats.accepted,
                "tx_frames": stats.tx_frames,
                "rx_frames": stats.rx_frames,
                "tx_messages": stats.tx_messages,
                "rx_messages": stats.rx_messages,
                "multi_chunk_tx": stats.multi_chunk_tx,
                "checksum_rejects": stats.checksum_rejects,
                "resyncs": stats.resyncs,
                "duplicates": stats.duplicates,
            },
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize headend json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "socket headend on {addr}: instance {target} of {pnas} PNA(s), {queries} tasks"
    );
    let _ = writeln!(out, "  completed   : {}", outcome.report.tasks_completed);
    let _ = writeln!(out, "  makespan    : {makespan:.3}s");
    let _ = writeln!(out, "  requeues    : {}", outcome.report.requeues);
    let _ = writeln!(out, "  unaccounted : {}", shutdown.tasks_unaccounted);
    if shutdown.threads_failed > 0 {
        let _ = writeln!(out, "  PANICKED    : {} thread(s)", shutdown.threads_failed);
    }
    let _ = writeln!(
        out,
        "  wire        : {} conn(s), {} tx / {} rx frames, {} multi-chunk tx",
        stats.accepted, stats.tx_frames, stats.rx_frames, stats.multi_chunk_tx
    );
    let _ = writeln!(
        out,
        "  integrity   : {} checksum reject(s), {} resync(s), {} duplicate(s)",
        stats.checksum_rejects, stats.resyncs, stats.duplicates
    );
    Ok(out)
}

/// `oddci pna`: one Processing Node Agent process. Connects to a
/// `oddci headend --listen` address, handshakes, and runs the full §3.2
/// receiver loop — wakeup, boot from the streamed image, task fetch,
/// result upload, heartbeats — until the headend broadcasts shutdown.
pub fn pna(p: &Parsed) -> Result<String, ArgError> {
    use oddci_live::wire::WirePnaConfig;

    let connect = socket_addr(p, "connect")?;
    let seed: u64 = p.num("seed", 7)?;
    let heartbeat_ms: u64 = p.num("heartbeat-ms", 150)?;
    let connect_secs: u64 = p.num("connect-timeout", 10)?;
    if heartbeat_ms == 0 || connect_secs == 0 {
        return Err(ArgError(
            "--heartbeat-ms and --connect-timeout must be positive".into(),
        ));
    }
    let mut cfg = WirePnaConfig::new(connect);
    cfg.seed = seed;
    cfg.heartbeat_interval = std::time::Duration::from_millis(heartbeat_ms);
    cfg.connect_timeout = std::time::Duration::from_secs(connect_secs);
    let report =
        oddci_live::run_wire_pna(cfg).map_err(|e| ArgError(format!("pna on {connect}: {e}")))?;
    let stats = &report.stats;

    if p.flag("json") {
        let v = serde_json::json!({
            "node": report.node.raw(),
            "wire": {
                "tx_frames": stats.tx_frames,
                "rx_frames": stats.rx_frames,
                "tx_messages": stats.tx_messages,
                "rx_messages": stats.rx_messages,
                "multi_chunk_rx": stats.multi_chunk_rx,
                "checksum_rejects": stats.checksum_rejects,
                "resyncs": stats.resyncs,
                "duplicates": stats.duplicates,
            },
        });
        return Ok(serde_json::to_string_pretty(&v).expect("serialize pna json"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "pna node {} ran to shutdown against {connect}",
        report.node.raw()
    );
    let _ = writeln!(
        out,
        "  wire      : {} tx / {} rx frames, {} tx / {} rx messages",
        stats.tx_frames, stats.rx_frames, stats.tx_messages, stats.rx_messages
    );
    let _ = writeln!(
        out,
        "  integrity : {} multi-chunk rx, {} checksum reject(s), {} resync(s)",
        stats.multi_chunk_rx, stats.checksum_rejects, stats.resyncs
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(parts: &[&str]) -> Parsed {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv).unwrap()
    }

    #[test]
    fn wakeup_matches_closed_form() {
        let out = wakeup(&parsed(&["wakeup", "--image-mb", "10", "--beta-mbps", "2"])).unwrap();
        // 10 MB @ 2 Mbps: mean = 1.5 * 10*2^20*8 / 2e6 = 62.9 s.
        assert!(out.contains("62.9"), "{out}");
    }

    #[test]
    fn wakeup_rejects_zero_beta() {
        assert!(wakeup(&parsed(&["wakeup", "--beta-mbps", "0"])).is_err());
    }

    #[test]
    fn efficiency_point_matches_paper_trend() {
        let hi = efficiency(&parsed(&[
            "efficiency",
            "--phi",
            "100000",
            "--ratio",
            "100",
        ]))
        .unwrap();
        let lo = efficiency(&parsed(&["efficiency", "--phi", "1", "--ratio", "100"])).unwrap();
        let grab = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.contains("efficiency"))
                .and_then(|l| l.split(':').nth(1))
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(grab(&hi) > 0.99);
        assert!(grab(&lo) < 0.1);
    }

    #[test]
    fn simulate_rejects_oversized_target() {
        let err = simulate(&parsed(&["simulate", "--nodes", "10", "--target", "20"])).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn headend_and_pna_require_their_addresses() {
        let err = headend(&parsed(&["headend"])).unwrap_err();
        assert!(err.to_string().contains("--listen"), "{err}");
        let err = pna(&parsed(&["pna"])).unwrap_err();
        assert!(err.to_string().contains("--connect"), "{err}");
        let err = headend(&parsed(&["headend", "--listen", "not-an-addr"])).unwrap_err();
        assert!(err.to_string().contains("HOST:PORT"), "{err}");
    }

    #[test]
    fn headend_rejects_oversized_target() {
        let err = headend(&parsed(&[
            "headend",
            "--listen",
            "127.0.0.1:0",
            "--pnas",
            "2",
            "--target",
            "5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--target"), "{err}");
    }

    #[test]
    fn headend_and_pna_complete_a_job_over_loopback() {
        // Reserve a free loopback port, release it, and race the headend
        // onto it — the same multi-process flow scripts/ci.sh runs, here
        // in-process so the test stays hermetic.
        let port = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                headend(&parsed(&[
                    "headend",
                    "--listen",
                    &addr,
                    "--pnas",
                    "2",
                    "--target",
                    "2",
                    "--queries",
                    "4",
                    "--json",
                ]))
            })
        };
        // The listener binds inside LiveOddci::start; give it a moment
        // before the clients dial in.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let seed = (100 + i).to_string();
                    pna(&parsed(&[
                        "pna",
                        "--connect",
                        &addr,
                        "--seed",
                        &seed,
                        "--heartbeat-ms",
                        "60",
                        "--json",
                    ]))
                })
            })
            .collect();

        let out = server.join().unwrap().unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["tasks_completed"], 4, "{out}");
        assert_eq!(v["tasks_unaccounted"], 0, "{out}");
        assert_eq!(v["threads_failed"], 0, "{out}");
        assert!(v["wire"]["multi_chunk_tx"].as_u64().unwrap() >= 1, "{out}");
        assert_eq!(v["wire"]["checksum_rejects"], 0, "{out}");

        for client in clients {
            let out = client.join().unwrap().unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert!(v["wire"]["rx_messages"].as_u64().unwrap() > 0, "{out}");
            assert!(v["wire"]["multi_chunk_rx"].as_u64().unwrap() >= 1, "{out}");
        }
    }

    #[test]
    fn check_lists_scenarios() {
        let out = check(&parsed(&["check", "--list"])).unwrap();
        assert!(out.contains("shutdown-under-active-sink"), "{out}");
        assert!(out.contains("expect-clean"), "{out}");
        assert!(out.contains("expect-fail"), "{out}");
    }

    #[test]
    fn check_rejects_unknown_scenario_and_bare_replay() {
        let err = check(&parsed(&["check", "--scenario", "no-such-thing"])).unwrap_err();
        assert!(err.to_string().contains("unknown scenario"));
        let err = check(&parsed(&["check", "--replay", "s11:0.1"])).unwrap_err();
        assert!(err.to_string().contains("requires --scenario"));
    }

    #[test]
    fn check_models_one_buggy_scenario_and_replays_it() {
        // The torn-snapshot scenario must be caught (it is the detector
        // sensitivity canary) and its printed schedule must replay.
        let out = check(&parsed(&[
            "check",
            "--skip-lint",
            "--scenario",
            "sink-stats-snapshot-torn",
            "--schedules",
            "400",
        ]))
        .unwrap();
        assert!(out.contains("detector caught"), "{out}");
        let schedule = out
            .split("replay ")
            .nth(1)
            .expect("replay schedule in output")
            .trim();
        let replayed = check(&parsed(&[
            "check",
            "--scenario",
            "sink-stats-snapshot-torn",
            "--replay",
            schedule,
        ]))
        .unwrap();
        assert!(replayed.contains("failure reproduced"), "{replayed}");
    }
}
