//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// Parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "argument error: {}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line: one subcommand plus `--key value` options and
/// bare `--flag`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Parsed {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?
            .clone();
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument `{arg}`")));
            };
            if key.is_empty() {
                return Err(ArgError("empty option name `--`".into()));
            }
            // A value follows unless the next token is another option or
            // the end (then it's a bare flag).
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it.next().expect("peeked").clone();
                    if options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("duplicate option `--{key}`")));
                    }
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Parsed {
            command,
            options,
            flags,
        })
    }

    /// True when `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw string value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("`--{name}` expects a number, got `{raw}`"))),
        }
    }

    /// An `A:B` pair option (used for `--churn ON:OFF`).
    pub fn pair(&self, name: &str) -> Result<Option<(u64, u64)>, ArgError> {
        let Some(raw) = self.options.get(name) else {
            return Ok(None);
        };
        let (a, b) = raw
            .split_once(':')
            .ok_or_else(|| ArgError(format!("`--{name}` expects A:B, got `{raw}`")))?;
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| ArgError(format!("`--{name}`: `{s}` is not a number")))
        };
        Ok(Some((parse(a)?, parse(b)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = Parsed::parse(&argv(&[
            "simulate", "--nodes", "100", "--json", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(p.command, "simulate");
        assert_eq!(p.get("nodes"), Some("100"));
        assert_eq!(p.num::<u64>("seed", 0).unwrap(), 7);
        assert!(p.flag("json"));
        assert!(!p.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = Parsed::parse(&argv(&["wakeup"])).unwrap();
        assert_eq!(p.num::<u64>("image-mb", 8).unwrap(), 8);
        assert_eq!(p.num::<f64>("beta-mbps", 1.0).unwrap(), 1.0);
    }

    #[test]
    fn rejects_bad_numbers_and_positionals() {
        let p = Parsed::parse(&argv(&["x", "--n", "abc"])).unwrap();
        assert!(p.num::<u64>("n", 0).is_err());
        assert!(Parsed::parse(&argv(&["x", "stray"])).is_err());
        assert!(Parsed::parse(&argv(&["x", "--a", "1", "--a", "2"])).is_err());
        assert!(Parsed::parse(&[]).is_err());
    }

    #[test]
    fn pair_parsing() {
        let p = Parsed::parse(&argv(&["simulate", "--churn", "60:20"])).unwrap();
        assert_eq!(p.pair("churn").unwrap(), Some((60, 20)));
        assert_eq!(p.pair("absent").unwrap(), None);
        let bad = Parsed::parse(&argv(&["simulate", "--churn", "60"])).unwrap();
        assert!(bad.pair("churn").is_err());
    }

    #[test]
    fn trailing_flag_is_a_flag() {
        let p = Parsed::parse(&argv(&["simulate", "--json"])).unwrap();
        assert!(p.flag("json"));
    }
}
