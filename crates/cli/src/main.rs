//! The `oddci` command-line tool. All logic lives in the library crate so
//! it is testable; this binary only shuttles argv/stdout/exit codes.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match oddci_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
