//! The live runtime: a headend (Provider + Controller + Backend) and one
//! OS thread per receiver, all speaking the §3.2 protocol over real
//! channels.
//!
//! The headend comes in two shapes, selected by [`HeadendMode`]:
//!
//! * [`HeadendMode::SingleLoop`] — the original sequential loop: one
//!   thread owns the Controller, the Backend and the carousel, and every
//!   heartbeat, task fetch and result upload serializes behind it. Kept
//!   as the measured baseline for the `soak` experiment.
//! * [`HeadendMode::Sharded`] — the multi-threaded headend of
//!   [`headend`](crate::headend): a carousel thread, N controller shards
//!   (disjoint node-membership slices) and a dispatch pool serving task
//!   *batches* in front of the shared Backend.
//!
//! Wall-clock time is mapped onto [`SimTime`] (microseconds since runtime
//! start) so the *identical* Controller/Backend/Provider code from
//! `oddci-core` runs unmodified on this plane.

use crate::bus::BroadcastBus;
use crate::headend::{DispatchMsg, ShardMsg, ShardedHeadend, SnapshotHandle};
use crate::image::{AlignmentImage, LiveBroadcast};
use crate::snapshot::{self, SnapshotState};
use crate::wire::WireMembership;
use oddci_check::sync::{bounded, unbounded, Mutex, Receiver, RecvTimeoutError, Sender};
use oddci_core::autoscale::{AutoscaleExport, AutoscalePolicy, Reconciler};
use oddci_core::backend::{Backend, TaskOutcome};
use oddci_core::controller::{Controller, ControllerOutput, ControllerPolicy, InstanceRequest};
use oddci_core::messages::{ControlMessage, Heartbeat, HeartbeatReply};
use oddci_core::pna::{HostInfo, Pna, PnaAction};
use oddci_core::provider::{JobReport, Provider, ProviderRequest};
use oddci_core::sharded::shard_of;
use oddci_faults::{Backoff, FaultInjector, FaultPlan};
use oddci_receiver::compute::UsageMode;
use oddci_telemetry::{Phase, Telemetry, CONTROL_TRACK};
use oddci_types::{
    DataSize, HeartbeatConfig, ImageId, InstanceId, JobId, NodeId, SimDuration, SimTime, TaskId,
};
use oddci_workload::alignment::{mutate, random_sequence};
use oddci_workload::{Job, Task};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which headend serves the node fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadendMode {
    /// One sequential headend thread (the pre-sharding architecture).
    /// Retained as the comparison baseline: it serves exactly one task
    /// per fetch round trip.
    SingleLoop,
    /// Sharded multi-threaded headend.
    Sharded {
        /// Controller shards (disjoint node-membership slices), 1..=64.
        shards: usize,
        /// Dispatch workers in front of the Backend, 1..=64.
        dispatch: usize,
        /// Tasks served per fetch round trip, 1..=1024.
        batch: usize,
    },
    /// A sharded headend behind a real TCP socket: nodes are *separate
    /// PNA processes* (or threads) dialing in over `oddci-wire` instead
    /// of in-process receiver threads. [`LiveConfig::nodes`] becomes the
    /// expected audience size (controller sizing), not a thread count —
    /// no local receivers are spawned.
    Socket {
        /// Address to listen on (port 0 picks an ephemeral port;
        /// [`LiveOddci::wire_addr`] reports the bound address).
        listen: std::net::SocketAddr,
        /// Controller shards, 1..=64.
        shards: usize,
        /// Dispatch workers, 1..=64.
        dispatch: usize,
        /// Tasks served per fetch round trip, 1..=1024.
        batch: usize,
    },
}

impl HeadendMode {
    /// Most controller shards a live system will run.
    pub const MAX_SHARDS: usize = 64;
    /// Most dispatch workers a live system will run.
    pub const MAX_DISPATCH: usize = 64;
    /// Largest task batch a node may fetch in one round trip.
    pub const MAX_BATCH: usize = 1024;

    /// Rejects degenerate configurations (`shards == 0`, oversized
    /// pools, …) with a human-readable explanation instead of letting
    /// the runtime panic on a zero-length shard vector.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            HeadendMode::SingleLoop => Ok(()),
            HeadendMode::Sharded {
                shards,
                dispatch,
                batch,
            }
            | HeadendMode::Socket {
                shards,
                dispatch,
                batch,
                ..
            } => {
                if shards == 0 || shards > Self::MAX_SHARDS {
                    return Err(format!(
                        "shards must be within 1..={} (got {shards})",
                        Self::MAX_SHARDS
                    ));
                }
                if dispatch == 0 || dispatch > Self::MAX_DISPATCH {
                    return Err(format!(
                        "dispatch workers must be within 1..={} (got {dispatch})",
                        Self::MAX_DISPATCH
                    ));
                }
                if batch == 0 || batch > Self::MAX_BATCH {
                    return Err(format!(
                        "batch must be within 1..={} (got {batch})",
                        Self::MAX_BATCH
                    ));
                }
                Ok(())
            }
        }
    }
}

impl Default for HeadendMode {
    fn default() -> Self {
        HeadendMode::Sharded {
            shards: 2,
            dispatch: 2,
            batch: 8,
        }
    }
}

/// Live runtime parameters.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Receiver threads to spawn.
    pub nodes: u64,
    /// Controller↔PNA shared key.
    pub key: Vec<u8>,
    /// PNA heartbeat period.
    pub heartbeat_interval: Duration,
    /// Controller maintenance period (loss detection, recomposition).
    pub controller_tick: Duration,
    /// Master seed for per-node randomness.
    pub seed: u64,
    /// Faults to inject (none by default). Decisions are keyed on runtime
    /// micros, so live injection is *statistically* faithful to the plan
    /// rather than replay-deterministic like the simulated plane.
    pub faults: FaultPlan,
    /// Observability sink shared by the headend and every node thread.
    /// Timestamps are wall-clock microseconds since runtime start, so live
    /// traces open in the same viewers as simulated ones.
    pub telemetry: Telemetry,
    /// Headend architecture (sharded by default).
    pub mode: HeadendMode,
    /// Where to publish durability snapshots (`headend.snap`, written
    /// atomically every [`snapshot_interval`](LiveConfig::snapshot_interval)).
    /// `None` (the default) disables snapshotting. Only the sharded and
    /// socket headends snapshot; the single-loop baseline predates
    /// durability and has no export path.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Snapshot cadence. Shorter intervals shrink the replay window a
    /// standby must cover but cost one state export per tick.
    pub snapshot_interval: Duration,
    /// Elastic sizing: when set, a reconciler thread continuously
    /// re-sizes every running instance against this SLO (see
    /// [`AutoscalePolicy`]). `None` (the default) keeps the paper's
    /// size-once behavior. Only the sharded and socket headends scale;
    /// the single-loop baseline ignores this.
    pub autoscale: Option<AutoscalePolicy>,
    /// Reconciliation cadence for the autoscale loop.
    pub autoscale_interval: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            nodes: 4,
            key: b"live-oddci-key".to_vec(),
            heartbeat_interval: Duration::from_millis(150),
            controller_tick: Duration::from_millis(200),
            seed: 42,
            faults: FaultPlan::none(),
            telemetry: Telemetry::disabled(),
            mode: HeadendMode::default(),
            snapshot_dir: None,
            snapshot_interval: Duration::from_millis(500),
            autoscale: None,
            autoscale_interval: Duration::from_millis(200),
        }
    }
}

/// What rides the bus.
#[derive(Debug, Clone)]
pub(crate) enum BusMsg {
    Control(LiveBroadcast),
    Shutdown,
}

/// Node → single-loop headend messages.
pub(crate) enum ToHeadend {
    Heartbeat(Heartbeat, Sender<HeartbeatReply>),
    TaskRequest {
        instance: InstanceId,
        node: NodeId,
        reply: Sender<TaskBatchReply>,
    },
    TaskResult {
        job: JobId,
        task: TaskId,
        node: NodeId,
        score: i32,
    },
    Submit {
        job: Job,
        queries: Vec<Arc<Vec<u8>>>,
        image: Arc<AlignmentImage>,
        target: u64,
        reply: Sender<ProviderRequest>,
    },
    Report {
        req: ProviderRequest,
        reply: Sender<Option<(JobReport, BTreeMap<TaskId, i32>)>>,
    },
    Shutdown,
}

/// Reply to a node's task request: a batch of (task, query) pairs. The
/// single-loop headend always answers with a batch of one.
#[derive(Debug, Clone)]
pub(crate) enum TaskBatchReply {
    Assigned {
        job: JobId,
        tasks: Vec<(Task, Arc<Vec<u8>>)>,
    },
    Drained,
}

/// How a node reaches the headend: one channel in single-loop mode, the
/// shard/dispatch fan-in channels (routed by node-id hash) when sharded,
/// or a framed TCP connection when the node is a separate PNA process.
#[derive(Clone)]
pub(crate) enum NodeLink {
    Single(Sender<ToHeadend>),
    Sharded {
        shards: Arc<Vec<Sender<ShardMsg>>>,
        dispatch: Arc<Vec<Sender<DispatchMsg>>>,
        batch: usize,
    },
    Remote(Arc<crate::wire::RemoteLink>),
}

impl NodeLink {
    pub(crate) fn send_heartbeat(&self, hb: Heartbeat, reply: Sender<HeartbeatReply>) -> bool {
        match self {
            NodeLink::Single(tx) => tx.send(ToHeadend::Heartbeat(hb, reply)).is_ok(),
            NodeLink::Sharded { shards, .. } => {
                let s = shard_of(hb.node, shards.len());
                shards[s].send(ShardMsg::Heartbeat { hb, reply }).is_ok()
            }
            NodeLink::Remote(link) => link.send_heartbeat(hb, reply),
        }
    }

    pub(crate) fn request_tasks(
        &self,
        instance: InstanceId,
        node: NodeId,
        reply: Sender<TaskBatchReply>,
    ) -> bool {
        match self {
            NodeLink::Single(tx) => tx
                .send(ToHeadend::TaskRequest {
                    instance,
                    node,
                    reply,
                })
                .is_ok(),
            NodeLink::Sharded {
                dispatch, batch, ..
            } => {
                let d = shard_of(node, dispatch.len());
                dispatch[d]
                    .send(DispatchMsg::Request {
                        instance,
                        node,
                        max: *batch,
                        reply,
                    })
                    .is_ok()
            }
            NodeLink::Remote(link) => link.request_tasks(instance, node, reply),
        }
    }

    pub(crate) fn send_results(
        &self,
        job: JobId,
        node: NodeId,
        results: Vec<(TaskId, i32)>,
    ) -> bool {
        match self {
            NodeLink::Single(tx) => results.into_iter().all(|(task, score)| {
                tx.send(ToHeadend::TaskResult {
                    job,
                    task,
                    node,
                    score,
                })
                .is_ok()
            }),
            NodeLink::Sharded { dispatch, .. } => {
                let d = shard_of(node, dispatch.len());
                dispatch[d]
                    .send(DispatchMsg::Results { job, node, results })
                    .is_ok()
            }
            NodeLink::Remote(link) => link.send_results(job, node, results),
        }
    }
}

/// Result of a completed live job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The Provider's report (makespan in runtime microseconds, etc.).
    pub report: JobReport,
    /// Best alignment score per task.
    pub scores: BTreeMap<TaskId, i32>,
}

/// Final accounting returned by [`LiveOddci::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Tasks in no Backend ledger (pending / assigned / completed) at
    /// shutdown. Always 0 unless bookkeeping broke — the
    /// `headend_shards` integration tests assert on it.
    pub tasks_unaccounted: u64,
    /// Threads (headend or node) that exited by panic instead of a clean
    /// return. When this is nonzero, `tasks_unaccounted` may undercount:
    /// a panicked thread's ledger contribution is unknown. Always 0 in a
    /// healthy run — joins used to be silently swallowed here, which hid
    /// exactly this failure mode.
    pub threads_failed: u64,
}

/// The running headend, by mode.
enum Headend {
    Single {
        tx: Sender<ToHeadend>,
        thread: Option<JoinHandle<u64>>,
    },
    Sharded(Option<ShardedHeadend>),
    Socket {
        sh: Option<ShardedHeadend>,
        server: Option<oddci_wire::WireServer>,
        conn_stats: Arc<oddci_wire::ConnStatsHub>,
        membership: Arc<Mutex<WireMembership>>,
    },
}

/// The live OddCI system.
pub struct LiveOddci {
    headend: Headend,
    bus: Arc<BroadcastBus<BusMsg>>,
    nodes: Vec<JoinHandle<()>>,
    next_job: AtomicU64,
    config: LiveConfig,
    /// Fencing epoch this headend acks hellos with (0 for a primary;
    /// snapshot epoch + 1 for a standby).
    epoch: u64,
    snapshot_handle: Option<SnapshotHandle>,
    /// Dropping the sender stops the snapshot writer thread.
    snapshot_stop: Option<Sender<()>>,
    snapshot_thread: Option<JoinHandle<()>>,
    /// The shared elastic-sizing loop state, when autoscale is on.
    autoscale: Option<Arc<Mutex<Reconciler>>>,
    /// Dropping the sender stops the reconciler thread.
    autoscale_stop: Option<Sender<()>>,
    autoscale_thread: Option<JoinHandle<()>>,
}

impl LiveOddci {
    /// Spawns the headend (per [`LiveConfig::mode`]) and all receiver
    /// threads.
    ///
    /// # Panics
    /// On `nodes == 0`, a [`HeadendMode`] that fails
    /// [`HeadendMode::validate`] (callers wanting an error instead of a
    /// panic — e.g. CLIs — validate first), or a
    /// [`HeadendMode::Socket`] listen address that cannot be bound.
    pub fn start(config: LiveConfig) -> Self {
        assert!(config.nodes > 0, "a live system needs at least one node");
        if let Err(e) = config.mode.validate() {
            panic!("invalid headend mode: {e}");
        }
        let bus = Arc::new(BroadcastBus::new());
        let start = Instant::now();
        let injector = Arc::new(FaultInjector::new(
            config.faults.clone(),
            config.seed ^ 0xFA17_FA17,
        ));

        let (headend, link) = match config.mode {
            HeadendMode::SingleLoop => {
                let (tx, rx) = unbounded();
                let thread = {
                    let bus = Arc::clone(&bus);
                    let cfg = config.clone();
                    let inj = Arc::clone(&injector);
                    std::thread::spawn(move || headend_main(cfg, bus, rx, start, inj))
                };
                (
                    Headend::Single {
                        tx: tx.clone(),
                        thread: Some(thread),
                    },
                    NodeLink::Single(tx),
                )
            }
            HeadendMode::Sharded {
                shards,
                dispatch,
                batch,
            } => {
                let sh = ShardedHeadend::start(
                    &config,
                    shards,
                    dispatch,
                    Arc::clone(&bus),
                    start,
                    Arc::clone(&injector),
                );
                let (shard_txs, dispatch_txs) = sh.node_links();
                (
                    Headend::Sharded(Some(sh)),
                    NodeLink::Sharded {
                        shards: Arc::new(shard_txs),
                        dispatch: Arc::new(dispatch_txs),
                        batch,
                    },
                )
            }
            HeadendMode::Socket {
                listen,
                shards,
                dispatch,
                batch,
            } => {
                let sh = ShardedHeadend::start(
                    &config,
                    shards,
                    dispatch,
                    Arc::clone(&bus),
                    start,
                    Arc::clone(&injector),
                );
                let (shard_txs, dispatch_txs) = sh.node_links();
                let shard_txs = Arc::new(shard_txs);
                let dispatch_txs = Arc::new(dispatch_txs);
                let conn_stats = Arc::new(oddci_wire::ConnStatsHub::new());
                let membership =
                    Arc::new(Mutex::named(WireMembership::new(), "live.wire.membership"));
                let service = crate::wire::LiveWireService::new(
                    Arc::clone(&shard_txs),
                    Arc::clone(&dispatch_txs),
                    batch,
                    bus.subscribe(),
                    config.telemetry.clone(),
                    Arc::clone(&conn_stats),
                    0, // a fresh primary starts at epoch 0
                    Arc::clone(&membership),
                );
                let mut scfg =
                    oddci_wire::ServerConfig::new(oddci_wire::Integrity::hmac(&config.key));
                scfg.injector =
                    FaultInjector::new(config.faults.clone(), config.seed ^ 0xFA17_FA17);
                scfg.telemetry = config.telemetry.clone();
                scfg.conn_stats = Some(Arc::clone(&conn_stats));
                let server = match oddci_wire::WireServer::bind(listen, scfg, service) {
                    Ok(s) => s,
                    Err(e) => panic!("socket headend cannot bind {listen}: {e}"),
                };
                (
                    Headend::Socket {
                        sh: Some(sh),
                        server: Some(server),
                        conn_stats,
                        membership,
                    },
                    NodeLink::Sharded {
                        shards: shard_txs,
                        dispatch: dispatch_txs,
                        batch,
                    },
                )
            }
        };

        // In socket mode the fleet lives in other processes: `nodes` is
        // the expected audience, not a local thread count.
        let local_nodes = match config.mode {
            HeadendMode::Socket { .. } => 0,
            _ => config.nodes,
        };
        let mut nodes = Vec::with_capacity(local_nodes as usize);
        for i in 0..local_nodes {
            let bus_rx = bus.subscribe();
            let link = link.clone();
            let key = config.key.clone();
            let hb = config.heartbeat_interval;
            let seed = config.seed ^ (i.wrapping_mul(0x9e3779b97f4a7c15));
            let inj = Arc::clone(&injector);
            let tele = config.telemetry.clone();
            nodes.push(std::thread::spawn(move || {
                node_main(
                    NodeId::new(i),
                    key,
                    bus_rx,
                    link,
                    hb,
                    seed,
                    start,
                    inj,
                    tele,
                )
            }));
        }

        // Elastic sizing: the reconciler thread steers every running
        // instance toward the policy's SLO. Created before the snapshot
        // writer so snapshots can embed the desired-state record.
        let (autoscale, autoscale_stop, autoscale_thread) = match (&headend, &config.autoscale) {
            (Headend::Sharded(Some(sh)) | Headend::Socket { sh: Some(sh), .. }, Some(policy)) => {
                let shared = Arc::new(Mutex::named(
                    Reconciler::new(*policy, policy.min_size),
                    "live.autoscale",
                ));
                let (stop, thread) = crate::headend::spawn_reconciler(
                    sh.reconciler_links(),
                    Arc::clone(&shared),
                    config.autoscale_interval,
                    Arc::clone(&injector),
                    config.telemetry.clone(),
                );
                (Some(shared), Some(stop), Some(thread))
            }
            _ => (None, None, None),
        };

        let (snapshot_handle, snapshot_stop, snapshot_thread) = match &headend {
            Headend::Sharded(Some(sh)) | Headend::Socket { sh: Some(sh), .. } => {
                let handle = sh.snapshot_handle();
                match &config.snapshot_dir {
                    Some(dir) => {
                        let membership = match &headend {
                            Headend::Socket { membership, .. } => Some(Arc::clone(membership)),
                            _ => None,
                        };
                        let (stop, thread) = spawn_snapshot_writer(
                            sh.snapshot_handle(),
                            membership,
                            autoscale.as_ref().map(Arc::clone),
                            0,
                            dir.clone(),
                            config.snapshot_interval,
                            start,
                            config.telemetry.clone(),
                        );
                        (Some(handle), Some(stop), Some(thread))
                    }
                    None => (Some(handle), None, None),
                }
            }
            _ => (None, None, None),
        };

        LiveOddci {
            headend,
            bus,
            nodes,
            next_job: AtomicU64::new(0),
            config,
            epoch: 0,
            snapshot_handle,
            snapshot_stop,
            snapshot_thread,
            autoscale,
            autoscale_stop,
            autoscale_thread,
        }
    }

    /// Boots a **standby** headend from a durability snapshot: the same
    /// socket architecture as [`LiveOddci::start`], but every shard's
    /// Controller, the carousel's image table, the hub's job state and
    /// the wire node-id namespace are adopted from `snap` *before* the
    /// listener binds — so the first PNA to redial finds its membership,
    /// its instance and its task ledger already in place. The standby
    /// acks hellos with `snap.epoch + 1`, which is what lets PNAs fence
    /// off the dead primary.
    ///
    /// Only [`HeadendMode::Socket`] makes sense here (a standby adopts
    /// *remote* PNAs; in-process node threads die with their runtime), and
    /// the shard count must match the snapshot's — message-id namespaces
    /// are per-shard.
    pub fn start_standby(config: LiveConfig, snap: &SnapshotState) -> Result<LiveOddci, String> {
        let HeadendMode::Socket {
            listen,
            shards,
            dispatch,
            batch,
        } = config.mode
        else {
            return Err("a standby headend adopts remote PNAs: use HeadendMode::Socket".into());
        };
        config.mode.validate()?;
        if config.nodes == 0 {
            return Err("a live system needs at least one node".into());
        }
        let bus = Arc::new(BroadcastBus::new());
        let start = Instant::now();
        let adopt_begin = wall_now(&start).as_micros();
        let injector = Arc::new(FaultInjector::new(
            config.faults.clone(),
            config.seed ^ 0xFA17_FA17,
        ));
        let sh = ShardedHeadend::start(
            &config,
            shards,
            dispatch,
            Arc::clone(&bus),
            start,
            Arc::clone(&injector),
        );
        if let Err(e) = sh.import_state(snap) {
            let _ = sh.shutdown();
            return Err(e);
        }
        let epoch = snap.epoch + 1;
        let membership = Arc::new(Mutex::named(
            WireMembership::adopted(snap.wire_next_node, &snap.wire_nodes),
            "live.wire.membership",
        ));
        let (shard_txs, dispatch_txs) = sh.node_links();
        let shard_txs = Arc::new(shard_txs);
        let dispatch_txs = Arc::new(dispatch_txs);
        let conn_stats = Arc::new(oddci_wire::ConnStatsHub::new());
        // The dead primary's listener can linger briefly after a kill;
        // retry AddrInUse for a few seconds instead of failing adoption.
        let bind_deadline = Instant::now() + Duration::from_secs(5);
        let server = loop {
            let service = crate::wire::LiveWireService::new(
                Arc::clone(&shard_txs),
                Arc::clone(&dispatch_txs),
                batch,
                bus.subscribe(),
                config.telemetry.clone(),
                Arc::clone(&conn_stats),
                epoch,
                Arc::clone(&membership),
            );
            let mut scfg = oddci_wire::ServerConfig::new(oddci_wire::Integrity::hmac(&config.key));
            scfg.injector = FaultInjector::new(config.faults.clone(), config.seed ^ 0xFA17_FA17);
            scfg.telemetry = config.telemetry.clone();
            scfg.conn_stats = Some(Arc::clone(&conn_stats));
            match oddci_wire::WireServer::bind(listen, scfg, service) {
                Ok(s) => break s,
                Err(oddci_wire::WireError::Io(e))
                    if e.kind() == std::io::ErrorKind::AddrInUse
                        && Instant::now() < bind_deadline =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => {
                    let _ = sh.shutdown();
                    return Err(format!("standby cannot bind {listen}: {e}"));
                }
            }
        };
        config.telemetry.span(
            adopt_begin,
            wall_now(&start).as_micros(),
            Phase::HeadendAdopt,
            CONTROL_TRACK,
            epoch,
        );
        // Job ids must keep climbing past everything the primary issued.
        let next_job = snap
            .job_queries
            .iter()
            .map(|(job, _)| job.raw() + 1)
            .chain(snap.job_scores.iter().map(|(job, _)| job.raw() + 1))
            .max()
            .unwrap_or(0);
        let handle = sh.snapshot_handle();
        // Resume scaling from the snapshot's desired-state record: the
        // adopted loop keeps the primary's desired size and unserved
        // cooldown, so the standby never re-provisions capacity the
        // primary already requested.
        let (autoscale, autoscale_stop, autoscale_thread) = match &config.autoscale {
            Some(policy) => {
                let now = wall_now(&start);
                let reconciler = match &snap.autoscale {
                    Some(export) => Reconciler::from_export(*policy, export, now),
                    None => Reconciler::new(*policy, policy.min_size),
                };
                let shared = Arc::new(Mutex::named(reconciler, "live.autoscale"));
                let (stop, thread) = crate::headend::spawn_reconciler(
                    sh.reconciler_links(),
                    Arc::clone(&shared),
                    config.autoscale_interval,
                    Arc::clone(&injector),
                    config.telemetry.clone(),
                );
                (Some(shared), Some(stop), Some(thread))
            }
            None => (None, None, None),
        };
        let (snapshot_stop, snapshot_thread) = match &config.snapshot_dir {
            Some(dir) => {
                let (stop, thread) = spawn_snapshot_writer(
                    sh.snapshot_handle(),
                    Some(Arc::clone(&membership)),
                    autoscale.as_ref().map(Arc::clone),
                    epoch,
                    dir.clone(),
                    config.snapshot_interval,
                    start,
                    config.telemetry.clone(),
                );
                (Some(stop), Some(thread))
            }
            None => (None, None),
        };
        Ok(LiveOddci {
            headend: Headend::Socket {
                sh: Some(sh),
                server: Some(server),
                conn_stats,
                membership,
            },
            bus,
            nodes: Vec::new(),
            next_job: AtomicU64::new(next_job),
            config,
            epoch,
            snapshot_handle: Some(handle),
            snapshot_stop,
            snapshot_thread,
            autoscale,
            autoscale_stop,
            autoscale_thread,
        })
    }

    /// The configuration this runtime started with.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// The runtime's telemetry bundle (all threads report into it).
    pub fn telemetry(&self) -> &Telemetry {
        &self.config.telemetry
    }

    /// The socket the headend listens on, in [`HeadendMode::Socket`] only
    /// (reports the ephemeral port when the config asked for port 0).
    pub fn wire_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.headend {
            Headend::Socket {
                server: Some(server),
                ..
            } => Some(server.local_addr()),
            _ => None,
        }
    }

    /// Wire transport counters, in [`HeadendMode::Socket`] only.
    pub fn wire_stats(&self) -> Option<oddci_wire::WireStatsSnapshot> {
        match &self.headend {
            Headend::Socket {
                server: Some(server),
                ..
            } => Some(server.stats().snapshot()),
            _ => None,
        }
    }

    /// Per-connection wire counters, in [`HeadendMode::Socket`] only.
    /// Disconnected peers stay listed with their final counters.
    pub fn wire_conn_stats(&self) -> Option<Vec<oddci_wire::ConnTraffic>> {
        match &self.headend {
            Headend::Socket { conn_stats, .. } => Some(conn_stats.snapshot()),
            _ => None,
        }
    }

    /// Submits an alignment job with `n_queries` queries against `image`'s
    /// database on an instance of `target` nodes, waits up to `timeout`
    /// and returns the outcome if the job completed in time.
    ///
    /// Half the queries are homologs planted in the database (they should
    /// score high), half are random noise (they should score ~0) — so the
    /// caller can verify that the distributed computation really ran.
    pub fn run_alignment_job(
        &self,
        image: AlignmentImage,
        n_queries: u64,
        target: u64,
        timeout: Duration,
    ) -> Option<JobOutcome> {
        assert!(n_queries > 0, "a job needs at least one query");
        let db = random_sequence(image.db_len, image.db_seed);
        let queries: Vec<Arc<Vec<u8>>> = (0..n_queries)
            .map(|i| {
                let q = if i % 2 == 0 {
                    // Planted homolog: a mutated slice of the database.
                    let start = (i as usize * 131) % db.len().saturating_sub(200);
                    mutate(&db[start..start + 150], 0.05, image.db_seed ^ i)
                } else {
                    random_sequence(150, image.db_seed ^ (i | 1 << 60))
                };
                Arc::new(q)
            })
            .collect();
        self.run_query_job(image, queries, target, timeout)
    }

    /// Submits a job of caller-supplied queries against `image`'s database
    /// (one task per query) and waits for it like
    /// [`run_alignment_job`](LiveOddci::run_alignment_job) — which is a
    /// wrapper around this that plants verifiable homologs. Callers that
    /// want throughput-shaped work (e.g. the `soak` benchmark) pass short
    /// random queries so each task is a cheap index scan and the headend
    /// round trip dominates.
    pub fn run_query_job(
        &self,
        image: AlignmentImage,
        queries: Vec<Arc<Vec<u8>>>,
        target: u64,
        timeout: Duration,
    ) -> Option<JobOutcome> {
        let req = self.submit_query_job(image, queries, target)?;
        self.wait_job(req, timeout)
    }

    /// Submits a job of caller-supplied queries without waiting: the
    /// split half of [`run_query_job`](LiveOddci::run_query_job), for
    /// callers who outlive the headend serving the job — the failover
    /// path submits on the primary, crashes it, and [`wait_job`]s the
    /// *standby's* matching request.
    ///
    /// [`wait_job`]: LiveOddci::wait_job
    pub fn submit_query_job(
        &self,
        image: AlignmentImage,
        queries: Vec<Arc<Vec<u8>>>,
        target: u64,
    ) -> Option<ProviderRequest> {
        assert!(!queries.is_empty(), "a job needs at least one query");
        let n_queries = queries.len() as u64;
        let job_id = JobId::new(self.next_job.fetch_add(1, Ordering::Relaxed));
        let tasks = (0..n_queries)
            .map(|i| {
                Task::new(
                    TaskId::new(i),
                    DataSize::from_bytes(150),
                    SimDuration::from_millis(10),
                    DataSize::from_bytes(8),
                )
            })
            .collect();
        let job = Job::new(
            job_id,
            ImageId::new(job_id.raw()),
            DataSize::from_megabytes(1),
            tasks,
        );

        match &self.headend {
            Headend::Single { tx, .. } => {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(ToHeadend::Submit {
                    job,
                    queries,
                    image: Arc::new(image),
                    target,
                    reply: reply_tx,
                })
                .ok()?;
                reply_rx.recv_timeout(Duration::from_secs(5)).ok()
            }
            Headend::Sharded(sh) | Headend::Socket { sh, .. } => {
                Some(sh.as_ref()?.submit(job, queries, Arc::new(image), target))
            }
        }
    }

    /// Polls a submitted request until it completes or `timeout` passes.
    pub fn wait_job(&self, req: ProviderRequest, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        loop {
            let out = match &self.headend {
                Headend::Single { tx, .. } => {
                    let (rtx, rrx) = bounded(1);
                    tx.send(ToHeadend::Report { req, reply: rtx }).ok()?;
                    rrx.recv_timeout(Duration::from_secs(5)).ok().flatten()
                }
                Headend::Sharded(sh) | Headend::Socket { sh, .. } => sh.as_ref()?.report(req),
            };
            if let Some((report, scores)) = out {
                return Some(JobOutcome { report, scores });
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Provider requests still running — what a standby must keep
    /// waiting on after adoption. Empty in single-loop mode (the
    /// baseline predates durability).
    pub fn running_jobs(&self) -> Vec<ProviderRequest> {
        match &self.headend {
            Headend::Sharded(sh) | Headend::Socket { sh, .. } => sh
                .as_ref()
                .map(ShardedHeadend::running_jobs)
                .unwrap_or_default(),
            Headend::Single { .. } => Vec::new(),
        }
    }

    /// The fencing epoch this headend acks hellos with: 0 for a primary,
    /// snapshot epoch + 1 for a standby.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cuts a snapshot right now, bypassing the periodic writer. `None`
    /// in single-loop mode or while the headend is winding down.
    pub fn snapshot_now(&self) -> Option<SnapshotState> {
        let handle = self.snapshot_handle.as_ref()?;
        let wire = match &self.headend {
            Headend::Socket { membership, .. } => membership.lock().export(),
            _ => (0, Vec::new()),
        };
        let mut snap = handle.export(self.epoch, wire)?;
        snap.autoscale = self.autoscale_state();
        Some(snap)
    }

    /// The elastic-sizing loop's current state — desired size, unserved
    /// cooldown, action counters. `None` when autoscale is off or the
    /// headend mode cannot scale.
    pub fn autoscale_state(&self) -> Option<AutoscaleExport> {
        let shared = self.autoscale.as_ref()?;
        let now = match &self.headend {
            Headend::Sharded(Some(sh)) | Headend::Socket { sh: Some(sh), .. } => {
                SimTime::from_micros(sh.now_us())
            }
            _ => SimTime::ZERO,
        };
        Some(shared.lock().export(now))
    }

    /// Re-applies `NodeLost` instants recorded after `since_us` (a
    /// snapshot's `taken_at_us`) from a recovered trace-event suffix: the
    /// dead primary may have re-queued a lost node's assignments *after*
    /// the snapshot was cut, and replaying those losses lets the standby
    /// re-queue immediately instead of waiting out its own miss-threshold
    /// window. Returns how many losses changed the ledger.
    pub fn replay_trace(&self, events: &[oddci_telemetry::Event], since_us: u64) -> u64 {
        let sh = match &self.headend {
            Headend::Sharded(Some(sh)) | Headend::Socket { sh: Some(sh), .. } => sh,
            _ => return 0,
        };
        let begin = sh.now_us();
        let mut nodes: Vec<NodeId> = events
            .iter()
            .filter(|e| {
                e.phase == Phase::NodeLost
                    && e.kind == oddci_telemetry::EventKind::Instant
                    && e.ts_us > since_us
            })
            .map(|e| NodeId::new(e.track))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let applied = sh.replay_node_losses(&nodes);
        self.config.telemetry.span(
            begin,
            sh.now_us(),
            Phase::HeadendReplay,
            CONTROL_TRACK,
            applied,
        );
        applied
    }

    /// Kills a socket headend the way SIGKILL would: the listener and its
    /// service drop (PNAs see a dead connection, not a goodbye), the
    /// headend threads are abandoned to exit on channel disconnect, and
    /// nothing is drained or accounted. The telemetry sink is flushed
    /// only because in-process "processes" share a sink — bytes already
    /// written to the fd would survive a real kill anyway.
    ///
    /// # Panics
    /// Outside [`HeadendMode::Socket`]: in-process modes share channels
    /// with live node threads, which would loop forever against a dropped
    /// headend.
    pub fn crash(mut self) {
        drop(self.autoscale_stop.take());
        if let Some(t) = self.autoscale_thread.take() {
            let _ = t.join();
        }
        drop(self.snapshot_stop.take());
        if let Some(t) = self.snapshot_thread.take() {
            let _ = t.join();
        }
        match &mut self.headend {
            Headend::Socket { sh, server, .. } => {
                if let Some(mut server) = server.take() {
                    let _ = server.stop();
                }
                drop(sh.take());
            }
            _ => panic!("crash() models a dead socket headend; use HeadendMode::Socket"),
        }
        self.config.telemetry.flush_sink();
    }

    /// Stops the headend and all nodes, joining every thread.
    ///
    /// The shutdown barrier: `Shutdown` goes out on the bus first and
    /// every node thread is joined, so no node can still be sending;
    /// then the headend winds down (sharded: dispatch pool, controller
    /// shards, carousel — receivers strictly outlive senders). The
    /// returned report carries the Backend's final task accounting.
    ///
    /// When a streaming trace sink is attached, every thread has exited
    /// — and therefore emitted its last event — before the sink is
    /// flushed, and the flush completes before `tasks_unaccounted` is
    /// computed: the streamed artifact always covers the full run the
    /// report describes.
    pub fn shutdown(mut self) -> ShutdownReport {
        let mut threads_failed = 0u64;
        // The reconciler and snapshot writer both talk to the shard
        // channels, so they must stop before those receivers wind down.
        drop(self.autoscale_stop.take());
        if let Some(t) = self.autoscale_thread.take() {
            threads_failed += u64::from(t.join().is_err());
        }
        drop(self.snapshot_stop.take());
        if let Some(t) = self.snapshot_thread.take() {
            threads_failed += u64::from(t.join().is_err());
        }
        self.bus.publish(&BusMsg::Shutdown);
        let tasks_unaccounted = match &mut self.headend {
            Headend::Single { tx, thread } => {
                let _ = tx.send(ToHeadend::Shutdown);
                let n = match thread.take().map(JoinHandle::join) {
                    Some(Ok(n)) => n,
                    Some(Err(_)) => {
                        threads_failed += 1;
                        0
                    }
                    None => 0,
                };
                for node in self.nodes.drain(..) {
                    threads_failed += u64::from(node.join().is_err());
                }
                n
            }
            Headend::Sharded(sh) => {
                for node in self.nodes.drain(..) {
                    threads_failed += u64::from(node.join().is_err());
                }
                match sh.take() {
                    Some(sh) => {
                        let (unaccounted, failed) = sh.shutdown();
                        threads_failed += failed;
                        unaccounted
                    }
                    None => 0,
                }
            }
            Headend::Socket { sh, server, .. } => {
                // The Shutdown bus message reaches the wire service, which
                // broadcasts it to every PNA and asks the serving loop to
                // drain and stop; joining the server here guarantees the
                // service (a shard/dispatch sender) is gone before the
                // sharded headend tears its receivers down.
                if let Some(mut server) = server.take() {
                    threads_failed += u64::from(!server.stop());
                }
                for node in self.nodes.drain(..) {
                    threads_failed += u64::from(node.join().is_err());
                }
                match sh.take() {
                    Some(sh) => {
                        let (unaccounted, failed) = sh.shutdown();
                        threads_failed += failed;
                        unaccounted
                    }
                    None => 0,
                }
            }
        };
        self.config.telemetry.flush_sink();
        ShutdownReport {
            tasks_unaccounted,
            threads_failed,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot writer
// ---------------------------------------------------------------------

/// Spawns the periodic snapshot writer: every `interval` it cuts a state
/// export and atomically replaces `dir/headend.snap`. Dropping the
/// returned sender (or sending on it) stops the thread.
#[allow(clippy::too_many_arguments)]
fn spawn_snapshot_writer(
    handle: SnapshotHandle,
    membership: Option<Arc<Mutex<WireMembership>>>,
    autoscale: Option<Arc<Mutex<Reconciler>>>,
    epoch: u64,
    dir: std::path::PathBuf,
    interval: Duration,
    start: Instant,
    tele: Telemetry,
) -> (Sender<()>, JoinHandle<()>) {
    let (tx, rx) = bounded::<()>(1);
    let thread = std::thread::spawn(move || {
        if std::fs::create_dir_all(&dir).is_err() {
            return; // nowhere to write; durability is best-effort
        }
        let path = dir.join(snapshot::SNAPSHOT_FILE);
        loop {
            match rx.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            let begin = wall_now(&start).as_micros();
            let wire = membership
                .as_ref()
                .map(|m| m.lock().export())
                .unwrap_or((0, Vec::new()));
            let Some(mut snap) = handle.export(epoch, wire) else {
                return; // headend winding down mid-export
            };
            snap.autoscale = autoscale
                .as_ref()
                .map(|r| r.lock().export(wall_now(&start)));
            let _ = snapshot::write_file(&path, &snap);
            tele.span(
                begin,
                wall_now(&start).as_micros(),
                Phase::HeadendSnapshot,
                CONTROL_TRACK,
                epoch,
            );
        }
    });
    (tx, thread)
}

// ---------------------------------------------------------------------
// Single-loop headend (the baseline architecture)
// ---------------------------------------------------------------------

struct HeadendState {
    controller: Controller,
    backend: Backend,
    provider: Provider,
    bus: Arc<BroadcastBus<BusMsg>>,
    start: Instant,
    instance_job: BTreeMap<InstanceId, JobId>,
    job_queries: BTreeMap<JobId, Vec<Arc<Vec<u8>>>>,
    job_scores: BTreeMap<JobId, BTreeMap<TaskId, i32>>,
    instance_image: BTreeMap<InstanceId, Arc<AlignmentImage>>,
    tele: Telemetry,
    queue_depth: oddci_telemetry::Gauge,
}

impl HeadendState {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn process_outputs(&mut self, outputs: Vec<ControllerOutput>) -> Vec<HeartbeatReply> {
        let mut replies = Vec::new();
        for out in outputs {
            match out {
                ControllerOutput::Broadcast(signed) => {
                    let (image, inst) = match signed.message {
                        ControlMessage::Wakeup(w) => {
                            (self.instance_image.get(&w.instance).cloned(), w.instance)
                        }
                        ControlMessage::Reset(r) => {
                            self.instance_image.remove(&r.instance);
                            (None, r.instance)
                        }
                    };
                    self.tele.instant(
                        self.now().as_micros(),
                        Phase::CarouselPublish,
                        CONTROL_TRACK,
                        inst.raw(),
                    );
                    self.bus
                        .publish(&BusMsg::Control(LiveBroadcast { signed, image }));
                }
                ControllerOutput::DirectReset { node, instance } => {
                    // In the live plane direct resets ride heartbeat replies.
                    self.tele.instant(
                        self.now().as_micros(),
                        Phase::DirectReset,
                        node.raw(),
                        instance.raw(),
                    );
                    replies.push(HeartbeatReply::Reset(instance));
                }
                ControllerOutput::NodeLost { node, .. } => {
                    self.tele
                        .instant(self.now().as_micros(), Phase::NodeLost, node.raw(), 0);
                    let _ = self.backend.node_lost(node);
                }
            }
        }
        replies
    }

    fn finish_if_done(&mut self, job: JobId) {
        if !self.backend.is_complete(job) {
            return;
        }
        let Some(req) = self.provider.request_for_job(job) else {
            return;
        };
        let Some((&inst, _)) = self.instance_job.iter().find(|(_, &j)| j == job) else {
            return;
        };
        let wakeups = self.controller.instance(inst).map_or(0, |r| r.wakeups_sent);
        let completed = self.backend.completed_count(job);
        let requeues = self.backend.requeue_count(job);
        let now = self.now();
        if self
            .provider
            .complete(req, now, completed, requeues, wakeups)
            .is_some()
        {
            if let Some(report) = self.provider.report(req) {
                let end = now.as_micros();
                self.tele.span(
                    end.saturating_sub(report.makespan.as_micros()),
                    end,
                    Phase::JobRun,
                    CONTROL_TRACK,
                    job.raw(),
                );
            }
            if let Ok(outputs) = self.controller.dismantle(inst) {
                let _ = self.process_outputs(outputs);
            }
        }
    }

    /// Final accounting: tasks in no ledger, across every job ever seen.
    fn unaccounted(&self) -> u64 {
        self.job_scores
            .keys()
            .map(|&job| self.backend.unaccounted_tasks(job))
            .sum()
    }
}

fn headend_main(
    config: LiveConfig,
    bus: Arc<BroadcastBus<BusMsg>>,
    rx: Receiver<ToHeadend>,
    start: Instant,
    injector: Arc<FaultInjector>,
) -> u64 {
    let policy = ControllerPolicy {
        heartbeat: HeartbeatConfig {
            interval: SimDuration::from_micros(config.heartbeat_interval.as_micros() as u64),
            // Generous: live nodes block while computing and may skip beats.
            miss_threshold: 50,
            message_bytes: 128,
        },
        sizing_slack: 1.0,
        recompose_threshold: 0.99,
        assumed_audience: config.nodes,
        recompose_requires_idle: false,
    };
    let tele = config.telemetry.clone();
    let queue_depth = tele.registry().gauge("backend.queue_depth");
    let mut st = HeadendState {
        controller: Controller::new(&config.key, policy),
        backend: Backend::new(),
        provider: Provider::new(),
        bus,
        start,
        instance_job: BTreeMap::new(),
        job_queries: BTreeMap::new(),
        job_scores: BTreeMap::new(),
        instance_image: BTreeMap::new(),
        tele,
        queue_depth,
    };
    let mut last_tick = Instant::now();

    loop {
        match rx.recv_timeout(config.controller_tick) {
            Ok(ToHeadend::Shutdown) => return st.unaccounted(),
            Ok(ToHeadend::Heartbeat(hb, reply)) => {
                let now = st.now();
                let outputs = st.controller.on_heartbeat(hb, now);
                let mut replies = st.process_outputs(outputs);
                let _ = reply.send(replies.pop().unwrap_or(HeartbeatReply::Ack));
            }
            Ok(ToHeadend::TaskRequest {
                instance,
                node,
                reply,
            }) => {
                // Fault hook: a stalled Backend answers nothing at all; the
                // node's reply timeout fires and it retries with backoff.
                if injector.backend_stalled(st.now()).is_some() {
                    drop(reply);
                    continue;
                }
                let Some(&job) = st.instance_job.get(&instance) else {
                    let _ = reply.send(TaskBatchReply::Drained);
                    continue;
                };
                match st.backend.fetch_task(job, node) {
                    Ok(TaskOutcome::Assigned(task)) => {
                        let query = st.job_queries[&job][task.id.index()].clone();
                        let _ = reply.send(TaskBatchReply::Assigned {
                            job,
                            tasks: vec![(task, query)],
                        });
                    }
                    _ => {
                        let _ = reply.send(TaskBatchReply::Drained);
                    }
                }
            }
            Ok(ToHeadend::TaskResult {
                job,
                task,
                node,
                score,
            }) => {
                let now = st.now();
                if st
                    .backend
                    .complete_task(job, task, node, now)
                    .unwrap_or(false)
                {
                    st.job_scores.entry(job).or_default().insert(task, score);
                    st.finish_if_done(job);
                } else {
                    st.job_scores.entry(job).or_default().insert(task, score);
                }
            }
            Ok(ToHeadend::Submit {
                job,
                queries,
                image,
                target,
                reply,
            }) => {
                let now = st.now();
                let job_id = job.id;
                let req = InstanceRequest {
                    image: job.image,
                    image_size: job.image_size,
                    target,
                    requirements: Default::default(),
                };
                st.backend.register_job(job, now);
                st.job_queries.insert(job_id, queries);
                st.job_scores.insert(job_id, BTreeMap::new());
                let (inst, outputs) = st.controller.create_instance(req, now);
                st.instance_job.insert(inst, job_id);
                st.instance_image.insert(inst, image);
                let request = st.provider.open_request(job_id, inst, target, now);
                let _ = st.process_outputs(outputs);
                let _ = reply.send(request);
            }
            Ok(ToHeadend::Report { req, reply }) => {
                let out = st.provider.report(req).map(|r| {
                    let scores = st.job_scores.get(&r.job).cloned().unwrap_or_default();
                    (r, scores)
                });
                let _ = reply.send(out);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return st.unaccounted(),
        }
        if last_tick.elapsed() >= config.controller_tick {
            last_tick = Instant::now();
            let now = st.now();
            let outputs = st.controller.tick(now);
            let _ = st.process_outputs(outputs);
            let depth: u64 = st
                .backend
                .open_jobs()
                .iter()
                .map(|&j| st.backend.pending_count(j))
                .sum();
            st.queue_depth.set(depth as f64);
        }
    }
}

// ---------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn node_main(
    id: NodeId,
    key: Vec<u8>,
    bus_rx: Receiver<BusMsg>,
    link: NodeLink,
    hb_interval: Duration,
    seed: u64,
    start: Instant,
    injector: Arc<FaultInjector>,
    tele: Telemetry,
) {
    let mut pna = Pna::new(id, &key);
    let mut rng = SmallRng::seed_from_u64(seed);
    let host = HostInfo {
        free_memory: DataSize::from_megabytes(128),
        usage: UsageMode::Standby,
    };
    loop {
        // Idle: listen to the bus, heartbeat on the side.
        match bus_rx.recv_timeout(hb_interval) {
            Ok(BusMsg::Shutdown) => return,
            Ok(BusMsg::Control(b)) => {
                if let PnaAction::BeginAcquisition { instance, .. } =
                    pna.on_control_message(&b.signed, host, &mut rng)
                {
                    tele.instant(
                        wall_now(&start).as_micros(),
                        Phase::PnaAccept,
                        id.raw(),
                        instance.raw(),
                    );
                    if let Some(image) = b.image {
                        if !run_instance(
                            &mut pna,
                            &mut rng,
                            host,
                            instance,
                            &image,
                            &bus_rx,
                            &link,
                            hb_interval,
                            seed,
                            &start,
                            &injector,
                            &tele,
                        ) {
                            return; // shutdown observed while busy
                        }
                    } else {
                        // Wakeup without image (race with reset): bail out.
                        pna.on_direct_reset(instance);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Fault hook: the PNA software crashes at its own timer; a
                // reboot later it comes back idle and resumes listening
                // (restart = this same loop — the carousel repeats).
                if maybe_crash(&mut pna, &injector, &start) {
                    continue;
                }
                if !heartbeat(&mut pna, &link, seed, &start, &injector, &tele) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// How long a node waits for a heartbeat reply before backing off.
const HB_REPLY_TIMEOUT: Duration = Duration::from_secs(2);
/// How long a node waits for a task-fetch reply before backing off.
const TASK_REPLY_TIMEOUT: Duration = Duration::from_secs(1);

/// Wall-clock runtime instant as [`SimTime`].
pub(crate) fn wall_now(start: &Instant) -> SimTime {
    SimTime::from_micros(start.elapsed().as_micros() as u64)
}

/// Rolls the PNA-crash fault. On a crash the agent loses all state and
/// sleeps out the reboot; returns `true` if one happened.
fn maybe_crash(pna: &mut Pna, injector: &FaultInjector, start: &Instant) -> bool {
    let Some(downtime) = injector.pna_crash(pna.node(), wall_now(start)) else {
        return false;
    };
    pna.power_off();
    std::thread::sleep(Duration::from_micros(downtime.as_micros()));
    true
}

/// Sends one heartbeat and applies the reply. A beat swallowed by an
/// injected drop or partition is simply skipped (the miss-threshold
/// machinery is the Controller's problem); a reply timeout is retried a
/// few times and then given up on *without* killing the node. Returns
/// false only when the headend is gone.
fn heartbeat(
    pna: &mut Pna,
    link: &NodeLink,
    seed: u64,
    start: &Instant,
    injector: &FaultInjector,
    tele: &Telemetry,
) -> bool {
    let id = pna.node();
    let backoff = Backoff::live();
    let mut attempt = 0;
    loop {
        let now = wall_now(start);
        if injector.partitioned(id, now) || injector.heartbeat_dropped(id, now) {
            return true;
        }
        let hb = pna.heartbeat(now);
        let (rtx, rrx) = bounded(1);
        if !link.send_heartbeat(hb, rtx) {
            return false;
        }
        match rrx.recv_timeout(HB_REPLY_TIMEOUT) {
            Ok(HeartbeatReply::Reset(inst)) => {
                tele.instant(wall_now(start).as_micros(), Phase::Heartbeat, id.raw(), 1);
                pna.on_direct_reset(inst);
                return true;
            }
            Ok(HeartbeatReply::Ack) => {
                tele.instant(wall_now(start).as_micros(), Phase::Heartbeat, id.raw(), 0);
                return true;
            }
            Err(_) => match backoff.delay_std(attempt, seed ^ 0xbea7) {
                Some(d) => {
                    tele.instant(
                        wall_now(start).as_micros(),
                        Phase::Retry,
                        id.raw(),
                        u64::from(attempt),
                    );
                    attempt += 1;
                    std::thread::sleep(d);
                }
                // Give up on this beat, not on the node.
                None => return true,
            },
        }
    }
}

/// Runs the busy phase: materialize the image, then pull batches of
/// tasks, compute them, and upload results until reset. Returns false
/// only on shutdown.
#[allow(clippy::too_many_arguments)]
fn run_instance(
    pna: &mut Pna,
    rng: &mut SmallRng,
    host: HostInfo,
    instance: InstanceId,
    image: &AlignmentImage,
    bus_rx: &Receiver<BusMsg>,
    link: &NodeLink,
    hb_interval: Duration,
    seed: u64,
    start: &Instant,
    injector: &FaultInjector,
    tele: &Telemetry,
) -> bool {
    let _ = pna.image_ready();
    // Real work: regenerate and index the database — the live plane's
    // DVE boot. The span runs accept → database ready.
    let boot_begin = wall_now(start).as_micros();
    let db = image.materialize();
    tele.span(
        boot_begin,
        wall_now(start).as_micros(),
        Phase::DveBoot,
        pna.node().raw(),
        instance.raw(),
    );
    if !heartbeat(pna, link, seed, start, injector, tele) {
        return true;
    }
    let backoff = Backoff::live();
    let mut fetch_attempt: u32 = 0;
    let mut fetch_began: Option<u64> = None;
    while !pna.is_idle() {
        // Drain broadcast traffic (resets, other instances' wakeups).
        while let Ok(msg) = bus_rx.try_recv() {
            match msg {
                BusMsg::Shutdown => return false,
                BusMsg::Control(b) => {
                    if let PnaAction::DveDestroyed { .. } =
                        pna.on_control_message(&b.signed, host, rng)
                    {
                        let _ = heartbeat(pna, link, seed, start, injector, tele);
                        return true;
                    }
                }
            }
        }
        if pna.is_idle() {
            break;
        }

        // Fault hook: a direct-channel loss episode eats the request on
        // the wire; the reply timeout below treats a stalled Backend the
        // same way. Both paths retry with backoff.
        let now = wall_now(start);
        let lost =
            injector.partitioned(pna.node(), now) || injector.direct_dropped(pna.node(), now);
        fetch_began.get_or_insert(now.as_micros());
        let reply = if lost {
            None
        } else {
            let (rtx, rrx) = bounded(1);
            if !link.request_tasks(instance, pna.node(), rtx) {
                return true;
            }
            rrx.recv_timeout(TASK_REPLY_TIMEOUT).ok()
        };
        match reply {
            Some(TaskBatchReply::Assigned { job, tasks }) => {
                fetch_attempt = 0;
                let track = pna.node().raw();
                if let Some(begin) = fetch_began.take() {
                    tele.span(
                        begin,
                        wall_now(start).as_micros(),
                        Phase::TaskFetch,
                        track,
                        tasks[0].0.id.raw(),
                    );
                }
                let mut results: Vec<(TaskId, i32)> = Vec::with_capacity(tasks.len());
                let mut destroyed = false;
                for (task, query) in tasks {
                    // Between tasks, drain control traffic: a reset
                    // mid-batch abandons the remainder (the Backend
                    // re-queues it via the NodeLost membership
                    // transition at this node's next idle heartbeat).
                    while let Ok(msg) = bus_rx.try_recv() {
                        match msg {
                            BusMsg::Shutdown => return false,
                            BusMsg::Control(b) => {
                                if let PnaAction::DveDestroyed { .. } =
                                    pna.on_control_message(&b.signed, host, rng)
                                {
                                    destroyed = true;
                                }
                            }
                        }
                    }
                    if destroyed {
                        break;
                    }
                    let compute_begin = wall_now(start).as_micros();
                    let score = image.score(&db, &query);
                    let computed = wall_now(start).as_micros();
                    tele.span(
                        compute_begin,
                        computed,
                        Phase::Compute,
                        track,
                        task.id.raw(),
                    );
                    tele.duration(
                        (computed.saturating_sub(compute_begin)) as f64 / 1e6,
                        Phase::Kernel,
                    );
                    let _ = pna.task_done();
                    results.push((task.id, score));
                }
                if !results.is_empty() {
                    send_results(pna, link, job, results, seed, start, injector, tele);
                }
                if destroyed {
                    let _ = heartbeat(pna, link, seed, start, injector, tele);
                    return true;
                }
            }
            Some(TaskBatchReply::Drained) => {
                fetch_attempt = 0;
                fetch_began = None;
                if maybe_crash(pna, injector, start) {
                    return true;
                }
                if !heartbeat(pna, link, seed, start, injector, tele) {
                    return true;
                }
                match bus_rx.recv_timeout(hb_interval) {
                    Ok(BusMsg::Shutdown) => return false,
                    Ok(BusMsg::Control(b)) => {
                        if let PnaAction::DveDestroyed { .. } =
                            pna.on_control_message(&b.signed, host, rng)
                        {
                            let _ = heartbeat(pna, link, seed, start, injector, tele);
                            return true;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return true,
                }
            }
            None => match backoff.delay_std(fetch_attempt, seed ^ 0xfe7c) {
                Some(d) => {
                    tele.instant(
                        wall_now(start).as_micros(),
                        Phase::Retry,
                        pna.node().raw(),
                        u64::from(fetch_attempt),
                    );
                    fetch_attempt += 1;
                    std::thread::sleep(d);
                }
                None => {
                    // Exhausted: give up on this chain but not on the node —
                    // heartbeat (so the Controller still sees us) and start
                    // a fresh chain. Pre-hardening this killed the worker.
                    fetch_attempt = 0;
                    fetch_began = None;
                    if !heartbeat(pna, link, seed, start, injector, tele) {
                        return true;
                    }
                }
            },
        }
    }
    true
}

/// Uploads a batch of results, retrying through loss episodes. An
/// exhausted chain abandons the local copies: the Backend still holds
/// the assignments and recycles them into the queue at this node's next
/// fetch.
#[allow(clippy::too_many_arguments)]
fn send_results(
    pna: &Pna,
    link: &NodeLink,
    job: JobId,
    results: Vec<(TaskId, i32)>,
    seed: u64,
    start: &Instant,
    injector: &FaultInjector,
    tele: &Telemetry,
) {
    let backoff = Backoff::live();
    let mut attempt = 0;
    let began = wall_now(start).as_micros();
    let count = results.len() as u64;
    loop {
        let now = wall_now(start);
        if !(injector.partitioned(pna.node(), now) || injector.direct_dropped(pna.node(), now)) {
            let _ = link.send_results(job, pna.node(), results);
            tele.span(
                began,
                wall_now(start).as_micros(),
                Phase::ResultUpload,
                pna.node().raw(),
                count,
            );
            return;
        }
        match backoff.delay_std(attempt, seed ^ 0x5e9d) {
            Some(d) => {
                tele.instant(
                    wall_now(start).as_micros(),
                    Phase::Retry,
                    pna.node().raw(),
                    u64::from(attempt),
                );
                attempt += 1;
                std::thread::sleep(d);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{run_wire_pna, WirePnaConfig};

    #[test]
    fn snapshot_now_round_trips_through_encode_decode() {
        let live = LiveOddci::start(LiveConfig {
            nodes: 2,
            ..Default::default()
        });
        let image = AlignmentImage::small_demo();
        let outcome = live
            .run_alignment_job(image, 4, 2, Duration::from_secs(30))
            .expect("job completes");
        assert_eq!(outcome.scores.len(), 4);
        let snap = live.snapshot_now().expect("sharded headends can snapshot");
        let decoded =
            crate::snapshot::decode(&crate::snapshot::encode(&snap)).expect("container decodes");
        assert_eq!(decoded.epoch, snap.epoch);
        assert_eq!(decoded.taken_at_us, snap.taken_at_us);
        assert_eq!(decoded.instance_job, snap.instance_job);
        assert_eq!(decoded.job_scores, snap.job_scores);
        assert_eq!(decoded.wire_next_node, snap.wire_next_node);
        let report = live.shutdown();
        assert_eq!(report.tasks_unaccounted, 0);
    }

    /// The full failover story, in-process: a socket headend snapshots
    /// while three reconnecting PNAs chew on a job, dies the way SIGKILL
    /// would, and a standby adopts its snapshot on the same port. The
    /// job must complete on the standby with every task accounted for
    /// and every PNA fenced up to the new epoch.
    #[test]
    fn standby_adopts_a_killed_socket_headend_mid_job() {
        let dir = std::env::temp_dir().join(format!(
            "oddci-failover-test-{}-{:x}",
            std::process::id(),
            std::ptr::from_ref(&()) as usize
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mk_config = |listen: std::net::SocketAddr| LiveConfig {
            nodes: 3,
            heartbeat_interval: Duration::from_millis(60),
            mode: HeadendMode::Socket {
                listen,
                shards: 2,
                dispatch: 2,
                batch: 4,
            },
            snapshot_dir: Some(dir.clone()),
            snapshot_interval: Duration::from_millis(50),
            ..Default::default()
        };
        let primary = LiveOddci::start(mk_config("127.0.0.1:0".parse().expect("addr")));
        let addr = primary.wire_addr().expect("socket headends listen");

        let pnas: Vec<_> = (0..3u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut cfg = WirePnaConfig::new(addr);
                    cfg.seed = 100 + i;
                    cfg.heartbeat_interval = Duration::from_millis(60);
                    cfg.reconnect = Some(Duration::from_secs(30));
                    run_wire_pna(cfg)
                })
            })
            .collect();

        // Enough work that the kill lands mid-job: planted homologs
        // against a larger library are genuinely expensive to score, so
        // the job cannot outrun the snapshot cadence even on a loaded
        // test machine.
        let image = AlignmentImage {
            db_len: 200_000,
            ..AlignmentImage::small_demo()
        };
        let db = random_sequence(image.db_len, image.db_seed);
        let queries: Vec<Arc<Vec<u8>>> = (0..64u64)
            .map(|i| {
                let start = (i as usize * 199) % (db.len() - 200);
                Arc::new(mutate(&db[start..start + 200], 0.05, 7 ^ i))
            })
            .collect();
        let req = primary
            .submit_query_job(image, queries, 3)
            .expect("submit succeeds");

        // Wait for a snapshot whose Provider still shows the request in
        // flight, then pull the plug — adopting a finished job would
        // make the running_jobs assertion below vacuous.
        let snap_path = dir.join(crate::snapshot::SNAPSHOT_FILE);
        let deadline = Instant::now() + Duration::from_secs(10);
        let snap = loop {
            if let Ok(s) = crate::snapshot::read_file(&snap_path) {
                let mid_job = !s.job_queries.is_empty()
                    && s.provider.requests.iter().any(|r| {
                        r.request == req
                            && matches!(r.state, oddci_core::provider::RequestState::Running)
                    });
                if mid_job {
                    break s;
                }
            }
            assert!(
                Instant::now() < deadline,
                "no snapshot caught the job in flight"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        primary.crash();

        let standby =
            LiveOddci::start_standby(mk_config(addr), &snap).expect("standby adopts the snapshot");
        assert_eq!(standby.epoch(), snap.epoch + 1);
        assert!(
            standby.running_jobs().contains(&req),
            "the adopted Provider still tracks the in-flight request"
        );
        let outcome = standby
            .wait_job(req, Duration::from_secs(120))
            .expect("job completes on the standby");
        assert_eq!(outcome.scores.len(), 64);

        let report = standby.shutdown();
        assert_eq!(report.tasks_unaccounted, 0, "no task lost across failover");
        assert_eq!(report.threads_failed, 0);
        for h in pnas {
            let rep = h
                .join()
                .expect("pna thread joins")
                .expect("pna survives the failover");
            assert_eq!(rep.epoch, 1, "every PNA re-acked at the standby's epoch");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Failover mid-scale-up: the primary's reconciler grows the instance
    /// from the floor, a snapshot captures the desired-state record, the
    /// primary dies, and the standby must resume from that record — same
    /// desired size, same action counters, inherited cooldown — instead
    /// of re-provisioning capacity the primary already requested.
    #[test]
    fn standby_resumes_autoscale_desired_state_from_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "oddci-autoscale-failover-test-{}-{:x}",
            std::process::id(),
            std::ptr::from_ref(&()) as usize
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = AutoscalePolicy {
            min_size: 1,
            max_size: 4,
            slo_queue_depth: 4,
            // Long cooldown: the scale-up the primary took must fence the
            // standby's loop for the rest of the test.
            cooldown: SimDuration::from_secs(30),
            ..AutoscalePolicy::default()
        };
        let mk_config = |listen: std::net::SocketAddr| LiveConfig {
            nodes: 4,
            heartbeat_interval: Duration::from_millis(60),
            mode: HeadendMode::Socket {
                listen,
                shards: 2,
                dispatch: 2,
                batch: 4,
            },
            snapshot_dir: Some(dir.clone()),
            snapshot_interval: Duration::from_millis(50),
            autoscale: Some(policy),
            autoscale_interval: Duration::from_millis(25),
            ..Default::default()
        };
        let primary = LiveOddci::start(mk_config("127.0.0.1:0".parse().expect("addr")));
        let addr = primary.wire_addr().expect("socket headends listen");

        let pnas: Vec<_> = (0..4u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut cfg = WirePnaConfig::new(addr);
                    cfg.seed = 200 + i;
                    cfg.heartbeat_interval = Duration::from_millis(60);
                    cfg.reconnect = Some(Duration::from_secs(30));
                    run_wire_pna(cfg)
                })
            })
            .collect();

        // Submit at the policy floor: 64 queued tasks against
        // slo_queue_depth=4 force the reconciler off the floor on its
        // first tick, so the kill lands mid-scale-up. Planted homolog
        // queries against a bigger database keep the job busy well past
        // the snapshot cut even in release builds.
        let image = AlignmentImage {
            db_len: 300_000,
            ..AlignmentImage::small_demo()
        };
        let db = random_sequence(image.db_len, image.db_seed);
        let queries: Vec<Arc<Vec<u8>>> = (0..64u64)
            .map(|i| {
                let start = (i as usize * 211) % (db.len() - 200);
                Arc::new(mutate(&db[start..start + 200], 0.05, 900 + i))
            })
            .collect();
        let req = primary
            .submit_query_job(image, queries, policy.min_size as u64)
            .expect("submit succeeds");

        // Wait for the reconciler's first scale-up, cut a snapshot that
        // carries the desired-state record, then pull the plug.
        let deadline = Instant::now() + Duration::from_secs(10);
        while primary.autoscale_state().is_none_or(|a| a.scale_ups < 1) {
            assert!(
                Instant::now() < deadline,
                "the reconciler never scaled up off the floor"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = primary.snapshot_now().expect("socket headends snapshot");
        assert!(
            !snap.job_queries.is_empty(),
            "the job must outlive the snapshot cut"
        );
        let pre = snap.autoscale.expect("snapshot carries the record");
        assert!(pre.scale_ups >= 1);
        assert!(pre.desired > policy.min_size, "scale-up left the floor");
        primary.crash();

        let standby =
            LiveOddci::start_standby(mk_config(addr), &snap).expect("standby adopts the snapshot");
        let adopted = standby
            .autoscale_state()
            .expect("autoscale config revives the reconciler");
        assert_eq!(
            adopted.desired, pre.desired,
            "desired state carries over verbatim"
        );
        assert!(adopted.scale_ups >= pre.scale_ups);

        // Let several reconcile ticks pass: the inherited cooldown must
        // fence any further action, so the standby cannot double-provision
        // the capacity the primary already requested.
        std::thread::sleep(Duration::from_millis(150));
        let later = standby
            .autoscale_state()
            .expect("reconciler still running on the standby");
        assert_eq!(
            later.scale_ups, pre.scale_ups,
            "standby re-provisioned capacity the primary already requested"
        );
        assert_eq!(later.desired, pre.desired);
        assert!(
            later.ticks > adopted.ticks,
            "the standby's reconciler is actually ticking"
        );

        let outcome = standby
            .wait_job(req, Duration::from_secs(120))
            .expect("job completes on the standby");
        assert_eq!(outcome.scores.len(), 64);

        let report = standby.shutdown();
        assert_eq!(report.tasks_unaccounted, 0, "no task lost across failover");
        assert_eq!(report.threads_failed, 0);
        for h in pnas {
            let rep = h
                .join()
                .expect("pna thread joins")
                .expect("pna survives the failover");
            assert_eq!(rep.epoch, 1, "every PNA re-acked at the standby's epoch");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
