//! Socket transport glue: the live plane over real TCP.
//!
//! Two halves live here, one per side of the wire:
//!
//! * `LiveWireService` — the headend side. It plugs into
//!   [`oddci_wire::WireServer`]'s serving loop and translates wire
//!   messages into the sharded headend's channel vocabulary
//!   (`ShardMsg` / `DispatchMsg`), forwards carousel broadcasts to
//!   every connection (streaming the materialized database inside the
//!   wakeup), and relays replies back once the shards answer.
//! * [`run_wire_pna`] — the PNA side. It dials the headend, performs the
//!   hello handshake to learn its node identity, and then runs the
//!   *identical* `node_main` loop every in-process node runs — the
//!   only difference is that its `NodeLink` is a `RemoteLink`
//!   writing framed messages to a socket instead of a channel.
//!
//! Request/reply pairs (heartbeats, task fetches) ride a correlation id:
//! the caller parks a one-shot channel under the id, the peer echoes the
//! id, and a demultiplexer completes the matching channel. Replies that
//! never come are dropped by the same timeouts that already govern the
//! channel-backed planes (`node_main`'s reply timeouts on the PNA side,
//! a pending-reply ceiling on the headend side).

use crate::headend::{DispatchMsg, ShardMsg};
use crate::image::{AlignmentImage, LiveBroadcast};
use crate::runtime::{node_main, BusMsg, NodeLink, TaskBatchReply};
use oddci_check::sync::{bounded, unbounded, Mutex, Receiver, Sender, TryRecvError};
use oddci_core::messages::{Heartbeat, HeartbeatReply};
use oddci_core::sharded::shard_of;
use oddci_faults::{FaultInjector, FaultPlan};
use oddci_telemetry::{Phase, Telemetry};
use oddci_types::NodeId;
use oddci_wire::codec::{Reader, Writer};
use oddci_wire::{
    ClientConfig, ConnId, ConnStatsHub, Integrity, Outbox, WireBatch, WireClient, WireError,
    WireMsg, WireService, WireStatsSnapshot, PROTO_VERSION,
};
use oddci_workload::alignment::{random_sequence, Scoring};
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the headend keeps a pending shard/dispatch reply before
/// assuming the shard dropped it (mirrors the node-side reply timeouts).
const PENDING_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a PNA waits for its `HelloAck` after connecting.
const HELLO_TIMEOUT: Duration = Duration::from_secs(5);
/// Correlation entries a `RemoteLink` keeps before evicting the oldest
/// (a reply that outlives this many successors is long since timed out).
const MAX_PENDING_CORR: usize = 64;
/// Databases the headend keeps encoded for re-broadcast (the carousel
/// repeats wakeups, so the common case is one hot entry).
const MAX_DB_CACHE: usize = 8;

// ---------------------------------------------------------------------
// Image wire form
// ---------------------------------------------------------------------

/// Encodes an image recipe plus its materialized database bytes for the
/// wakeup broadcast. The database rides along so a remote PNA boots from
/// the streamed copy instead of regenerating from the seed — this is the
/// payload that exercises multi-chunk framing.
pub(crate) fn encode_image(image: &AlignmentImage, db: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + db.len());
    w.u64(image.db_seed);
    w.u64(image.db_len as u64);
    w.u64(image.k as u64);
    w.i32(image.scoring.matched);
    w.i32(image.scoring.mismatch);
    w.i32(image.scoring.gap);
    w.u64(image.window as u64);
    w.i32(image.min_score);
    w.bytes(db);
    w.into_bytes()
}

/// Decodes the wire form back into a recipe whose `prefetched` field
/// carries the streamed database.
pub(crate) fn decode_image(bytes: &[u8]) -> Result<AlignmentImage, WireError> {
    let mut r = Reader::new(bytes);
    let db_seed = r.u64()?;
    let db_len = r.u64()? as usize;
    let k = r.u64()? as usize;
    let scoring = Scoring {
        matched: r.i32()?,
        mismatch: r.i32()?,
        gap: r.i32()?,
    };
    let window = r.u64()? as usize;
    let min_score = r.i32()?;
    let db = r.bytes()?.to_vec();
    r.finish()?;
    Ok(AlignmentImage {
        db_seed,
        db_len,
        k,
        scoring,
        window,
        min_score,
        prefetched: Some(Arc::new(db)),
    })
}

// ---------------------------------------------------------------------
// Headend side: the wire service
// ---------------------------------------------------------------------

/// The wire plane's node-id namespace, shared between the serving loop
/// (which assigns ids on hello) and the snapshot writer (which must
/// capture them so a standby never reassigns a live node's identity).
///
/// A standby seeds this from the snapshot: `next_node` continues the
/// primary's sequence and `assigned` validates `resume` requests — a
/// reconnecting PNA keeps the id it already heartbeats under.
pub(crate) struct WireMembership {
    /// Next fresh node id.
    pub(crate) next_node: u64,
    /// Every node id handed out so far (primary's plus this headend's).
    pub(crate) assigned: BTreeSet<u64>,
}

impl WireMembership {
    /// An empty namespace (a fresh primary).
    pub(crate) fn new() -> WireMembership {
        WireMembership {
            next_node: 0,
            assigned: BTreeSet::new(),
        }
    }

    /// A namespace adopted from a snapshot.
    pub(crate) fn adopted(next_node: u64, nodes: &[u64]) -> WireMembership {
        WireMembership {
            next_node,
            assigned: nodes.iter().copied().collect(),
        }
    }

    /// Snapshot form: `(next_node, assigned ids)`.
    pub(crate) fn export(&self) -> (u64, Vec<u64>) {
        (self.next_node, self.assigned.iter().copied().collect())
    }
}

/// A reply the headend still owes a connection: the shard/dispatch
/// worker answers on `rx`, and the serving loop's `poll` relays it out.
struct PendingReply<T> {
    conn: ConnId,
    corr: u64,
    rx: Receiver<T>,
    since: Instant,
}

/// The headend's [`WireService`]: translates wire traffic into the
/// sharded headend's channels and carousel broadcasts into wire frames.
///
/// It runs single-threaded inside the serving loop, so it holds plain
/// collections — the only synchronization is the channels themselves.
pub(crate) struct LiveWireService {
    shards: Arc<Vec<Sender<ShardMsg>>>,
    dispatch: Arc<Vec<Sender<DispatchMsg>>>,
    batch: usize,
    bus_rx: Receiver<BusMsg>,
    tele: Telemetry,
    conn_stats: Arc<ConnStatsHub>,
    start: Instant,
    conn_nodes: BTreeMap<ConnId, NodeId>,
    /// This headend's fencing epoch, echoed in every `HelloAck`. A PNA
    /// that has seen a higher epoch refuses the ack, so a revenant
    /// primary can never reclaim a fleet a standby has adopted.
    epoch: u64,
    membership: Arc<Mutex<WireMembership>>,
    pending_hb: Vec<PendingReply<HeartbeatReply>>,
    pending_tasks: Vec<PendingReply<TaskBatchReply>>,
    db_cache: BTreeMap<(u64, u64), Arc<Vec<u8>>>,
}

impl LiveWireService {
    /// Builds the service in front of an already-running sharded headend.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shards: Arc<Vec<Sender<ShardMsg>>>,
        dispatch: Arc<Vec<Sender<DispatchMsg>>>,
        batch: usize,
        bus_rx: Receiver<BusMsg>,
        tele: Telemetry,
        conn_stats: Arc<ConnStatsHub>,
        epoch: u64,
        membership: Arc<Mutex<WireMembership>>,
    ) -> LiveWireService {
        LiveWireService {
            shards,
            dispatch,
            batch,
            bus_rx,
            tele,
            conn_stats,
            start: Instant::now(),
            conn_nodes: BTreeMap::new(),
            epoch,
            membership,
            pending_hb: Vec::new(),
            pending_tasks: Vec::new(),
            db_cache: BTreeMap::new(),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The encoded wakeup payload for `image`, with the materialized
    /// database cached across the carousel's re-broadcasts.
    fn encoded_image(&mut self, image: &AlignmentImage) -> Vec<u8> {
        let key = (image.db_seed, image.db_len as u64);
        let db = match self.db_cache.get(&key) {
            Some(db) => Arc::clone(db),
            None => {
                let db = match &image.prefetched {
                    Some(bytes) => Arc::clone(bytes),
                    None => Arc::new(random_sequence(image.db_len, image.db_seed)),
                };
                while self.db_cache.len() >= MAX_DB_CACHE {
                    self.db_cache.pop_first();
                }
                self.db_cache.insert(key, Arc::clone(&db));
                db
            }
        };
        encode_image(image, &db)
    }

    /// Relays every pending reply whose shard has answered, and drops
    /// entries whose shard is gone or slow (the node retries anyway).
    fn drain_pending(&mut self, out: &mut Outbox) {
        let mut i = 0;
        while i < self.pending_hb.len() {
            match self.pending_hb[i].rx.try_recv() {
                Ok(reply) => {
                    let p = self.pending_hb.swap_remove(i);
                    out.send(
                        p.conn,
                        WireMsg::HeartbeatReply {
                            corr: p.corr,
                            reply,
                        },
                    );
                }
                Err(TryRecvError::Empty) => {
                    if self.pending_hb[i].since.elapsed() > PENDING_TIMEOUT {
                        self.pending_hb.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    self.pending_hb.swap_remove(i);
                }
            }
        }
        let mut i = 0;
        while i < self.pending_tasks.len() {
            match self.pending_tasks[i].rx.try_recv() {
                Ok(reply) => {
                    let p = self.pending_tasks.swap_remove(i);
                    out.send(
                        p.conn,
                        WireMsg::TaskBatch {
                            corr: p.corr,
                            batch: to_wire_batch(reply),
                        },
                    );
                }
                Err(TryRecvError::Empty) => {
                    if self.pending_tasks[i].since.elapsed() > PENDING_TIMEOUT {
                        self.pending_tasks.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    self.pending_tasks.swap_remove(i);
                }
            }
        }
    }
}

impl WireService for LiveWireService {
    fn on_message(&mut self, conn: ConnId, msg: WireMsg, out: &mut Outbox) {
        match msg {
            WireMsg::Hello { proto, resume, .. } => {
                // A version we don't speak gets no ack — the client's
                // handshake timeout turns that into a clean error. The
                // client's claimed epoch is ignored here: fencing is
                // enforced on the PNA side, which refuses any ack whose
                // epoch is below the highest it has seen.
                if proto != PROTO_VERSION {
                    return;
                }
                let node = match self.conn_nodes.get(&conn) {
                    Some(node) => *node,
                    None => {
                        let node = {
                            let mut m = self.membership.lock();
                            match resume {
                                // A reconnecting node keeps its identity if
                                // this headend (or the snapshot it adopted)
                                // ever issued it; an unknown claim gets a
                                // fresh id like any newcomer.
                                Some(node) if m.assigned.contains(&node.raw()) => node,
                                _ => {
                                    let id = m.next_node;
                                    m.next_node += 1;
                                    m.assigned.insert(id);
                                    NodeId::new(id)
                                }
                            }
                        };
                        self.conn_nodes.insert(conn, node);
                        self.tele.instant(
                            self.now_us(),
                            Phase::WireConnect,
                            node.raw(),
                            conn.raw(),
                        );
                        node
                    }
                };
                out.send(
                    conn,
                    WireMsg::HelloAck {
                        node,
                        epoch: self.epoch,
                    },
                );
            }
            WireMsg::Heartbeat { corr, hb } => {
                let (rtx, rrx) = bounded(1);
                let s = shard_of(hb.node, self.shards.len());
                if self.shards[s]
                    .send(ShardMsg::Heartbeat { hb, reply: rtx })
                    .is_ok()
                {
                    self.pending_hb.push(PendingReply {
                        conn,
                        corr,
                        rx: rrx,
                        since: Instant::now(),
                    });
                }
            }
            WireMsg::TaskRequest {
                corr,
                instance,
                node,
            } => {
                let (rtx, rrx) = bounded(1);
                let d = shard_of(node, self.dispatch.len());
                let req = DispatchMsg::Request {
                    instance,
                    node,
                    max: self.batch,
                    reply: rtx,
                };
                if self.dispatch[d].send(req).is_ok() {
                    self.pending_tasks.push(PendingReply {
                        conn,
                        corr,
                        rx: rrx,
                        since: Instant::now(),
                    });
                }
            }
            WireMsg::Results { job, node, results } => {
                let d = shard_of(node, self.dispatch.len());
                let _ = self.dispatch[d].send(DispatchMsg::Results { job, node, results });
            }
            // Answered without a handshake: a monitoring client (`oddci
            // top`) must not consume a node identity just to look.
            WireMsg::StatsQuery { corr } => {
                out.send(
                    conn,
                    WireMsg::StatsReply {
                        corr,
                        registry: self.tele.metrics_snapshot(),
                        connections: self.conn_stats.snapshot(),
                    },
                );
            }
            // Server-to-client vocabulary arriving at the server: noise.
            WireMsg::HelloAck { .. }
            | WireMsg::HeartbeatReply { .. }
            | WireMsg::TaskBatch { .. }
            | WireMsg::Broadcast { .. }
            | WireMsg::StatsReply { .. }
            | WireMsg::Shutdown => {}
        }
    }

    fn on_disconnect(&mut self, conn: ConnId, _out: &mut Outbox) {
        self.conn_nodes.remove(&conn);
        self.pending_hb.retain(|p| p.conn != conn);
        self.pending_tasks.retain(|p| p.conn != conn);
    }

    fn poll(&mut self, out: &mut Outbox) {
        while let Ok(msg) = self.bus_rx.try_recv() {
            match msg {
                BusMsg::Control(b) => {
                    let image = b.image.as_deref().map(|img| self.encoded_image(img));
                    out.broadcast(WireMsg::Broadcast {
                        signed: b.signed,
                        image,
                    });
                }
                BusMsg::Shutdown => {
                    out.broadcast(WireMsg::Shutdown);
                    out.request_stop();
                }
            }
        }
        self.drain_pending(out);
    }
}

fn to_wire_batch(reply: TaskBatchReply) -> WireBatch {
    match reply {
        TaskBatchReply::Drained => WireBatch::Drained,
        TaskBatchReply::Assigned { job, tasks } => WireBatch::Assigned {
            job,
            tasks: tasks
                .into_iter()
                .map(|(task, query)| (task, query.as_ref().clone()))
                .collect(),
        },
    }
}

fn from_wire_batch(batch: WireBatch) -> TaskBatchReply {
    match batch {
        WireBatch::Drained => TaskBatchReply::Drained,
        WireBatch::Assigned { job, tasks } => TaskBatchReply::Assigned {
            job,
            tasks: tasks
                .into_iter()
                .map(|(task, query)| (task, Arc::new(query)))
                .collect(),
        },
    }
}

// ---------------------------------------------------------------------
// PNA side: the remote link and the process entry point
// ---------------------------------------------------------------------

/// A `NodeLink` backed by one TCP connection: requests go out with a
/// correlation id, the demultiplexer thread completes the parked reply
/// channel when the echo comes back.
///
/// The client sits behind a swappable `Arc` so the demultiplexer can
/// replace a dead connection with a freshly dialed one (headend
/// failover) while senders keep working: they clone the current handle
/// under a short lock and send outside it.
pub(crate) struct RemoteLink {
    client: Mutex<Arc<WireClient>>,
    pending_hb: Mutex<BTreeMap<u64, Sender<HeartbeatReply>>>,
    pending_tasks: Mutex<BTreeMap<u64, Sender<TaskBatchReply>>>,
    next_corr: AtomicU64,
    /// With reconnect enabled, a failed socket send is reported as
    /// *success* to the node loop: the message is treated like one lost
    /// on the wire (the reply timeout and backoff machinery absorb it)
    /// while the demultiplexer redials in the background. Without it, a
    /// failed send means the headend is gone for good.
    tolerate_disconnect: bool,
    /// Set once the node loop is done and the link is closing for real —
    /// tells the demultiplexer not to redial a deliberate teardown.
    closing: AtomicBool,
    /// Highest epoch any `HelloAck` has carried. Reconnect handshakes
    /// refuse acks below this — the fencing rule that keeps a revenant
    /// primary from reclaiming the node.
    epoch_seen: AtomicU64,
}

impl RemoteLink {
    fn new(client: WireClient, tolerate_disconnect: bool, epoch: u64) -> RemoteLink {
        RemoteLink {
            client: Mutex::named(Arc::new(client), "live.wire.client"),
            // `named_send_sensitive`: no channel send may happen while
            // either map's lock is held — callers park the reply sender,
            // release, then write to the socket.
            pending_hb: Mutex::named_send_sensitive(BTreeMap::new(), "live.wire.pending_hb"),
            pending_tasks: Mutex::named_send_sensitive(BTreeMap::new(), "live.wire.pending_tasks"),
            next_corr: AtomicU64::new(0),
            tolerate_disconnect,
            closing: AtomicBool::new(false),
            epoch_seen: AtomicU64::new(epoch),
        }
    }

    /// The current connection handle.
    fn client(&self) -> Arc<WireClient> {
        Arc::clone(&self.client.lock())
    }

    /// Installs a freshly dialed connection and drops every parked
    /// correlation — replies to requests sent on the dead socket will
    /// never arrive, and the waiting callers' timeouts already fired (or
    /// soon will).
    fn swap_client(&self, client: WireClient) {
        *self.client.lock() = Arc::new(client);
        self.pending_hb.lock().clear();
        self.pending_tasks.lock().clear();
    }

    fn corr(&self) -> u64 {
        self.next_corr.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends on the current connection; see `tolerate_disconnect` for
    /// how a dead socket is reported.
    fn send(&self, msg: &WireMsg) -> bool {
        self.client().send(msg)
            || (self.tolerate_disconnect && !self.closing.load(Ordering::SeqCst))
    }

    pub(crate) fn send_heartbeat(&self, hb: Heartbeat, reply: Sender<HeartbeatReply>) -> bool {
        let corr = self.corr();
        {
            let mut map = self.pending_hb.lock();
            map.insert(corr, reply);
            while map.len() > MAX_PENDING_CORR {
                map.pop_first();
            }
        }
        self.send(&WireMsg::Heartbeat { corr, hb })
    }

    pub(crate) fn request_tasks(
        &self,
        instance: oddci_types::InstanceId,
        node: NodeId,
        reply: Sender<TaskBatchReply>,
    ) -> bool {
        let corr = self.corr();
        {
            let mut map = self.pending_tasks.lock();
            map.insert(corr, reply);
            while map.len() > MAX_PENDING_CORR {
                map.pop_first();
            }
        }
        self.send(&WireMsg::TaskRequest {
            corr,
            instance,
            node,
        })
    }

    pub(crate) fn send_results(
        &self,
        job: oddci_types::JobId,
        node: NodeId,
        results: Vec<(oddci_types::TaskId, i32)>,
    ) -> bool {
        self.send(&WireMsg::Results { job, node, results })
    }
}

/// Routes one inbound message: replies complete their parked channel,
/// broadcasts and shutdowns go onto the node's bus.
fn demux(link: &RemoteLink, bus_tx: &Sender<BusMsg>, msg: WireMsg) {
    match msg {
        WireMsg::HeartbeatReply { corr, reply } => {
            let parked = link.pending_hb.lock().remove(&corr);
            if let Some(tx) = parked {
                let _ = tx.send(reply);
            }
        }
        WireMsg::TaskBatch { corr, batch } => {
            let parked = link.pending_tasks.lock().remove(&corr);
            if let Some(tx) = parked {
                let _ = tx.send(from_wire_batch(batch));
            }
        }
        WireMsg::Broadcast { signed, image } => {
            // An image that fails to decode is treated like a wakeup
            // without one: the node declines the instance and the next
            // carousel pass retries.
            let image = image
                .and_then(|bytes| decode_image(&bytes).ok())
                .map(Arc::new);
            let _ = bus_tx.send(BusMsg::Control(LiveBroadcast { signed, image }));
        }
        WireMsg::Shutdown => {
            let _ = bus_tx.send(BusMsg::Shutdown);
        }
        // Client-to-server vocabulary arriving at a client: noise. Stats
        // replies only matter to a polling monitor, which reads the
        // receiver directly instead of running a node loop.
        WireMsg::Hello { .. }
        | WireMsg::HelloAck { .. }
        | WireMsg::Heartbeat { .. }
        | WireMsg::TaskRequest { .. }
        | WireMsg::Results { .. }
        | WireMsg::StatsQuery { .. }
        | WireMsg::StatsReply { .. } => {}
    }
}

/// Parameters for one PNA process (or thread) joining a socket headend.
#[derive(Debug, Clone)]
pub struct WirePnaConfig {
    /// The headend's listen address.
    pub addr: SocketAddr,
    /// Controller↔PNA shared key (must match the headend's).
    pub key: Vec<u8>,
    /// Heartbeat period.
    pub heartbeat_interval: Duration,
    /// Seed for this PNA's randomness (vary it per process).
    pub seed: u64,
    /// Faults to inject, protocol- and wire-level.
    pub faults: FaultPlan,
    /// Observability sink for this process.
    pub telemetry: Telemetry,
    /// How long to keep redialing the headend before giving up.
    pub connect_timeout: Duration,
    /// When set, a dead connection is not fatal: the PNA keeps redialing
    /// for this long (per outage), resuming its node identity at
    /// whatever headend answers — the standby-failover path. Each
    /// re-handshake enforces epoch fencing: an ack carrying a lower
    /// epoch than the highest seen is refused. `None` (the default)
    /// keeps the original behavior: disconnect means shutdown.
    pub reconnect: Option<Duration>,
}

impl WirePnaConfig {
    /// Defaults matching [`LiveConfig::default`](crate::LiveConfig).
    pub fn new(addr: SocketAddr) -> WirePnaConfig {
        WirePnaConfig {
            addr,
            key: b"live-oddci-key".to_vec(),
            heartbeat_interval: Duration::from_millis(150),
            seed: 42,
            faults: FaultPlan::none(),
            telemetry: Telemetry::disabled(),
            connect_timeout: Duration::from_secs(5),
            reconnect: None,
        }
    }
}

/// What a finished PNA reports back to its process wrapper.
#[derive(Debug, Clone)]
pub struct WirePnaReport {
    /// The node identity the headend assigned.
    pub node: NodeId,
    /// Final wire-transport counters for the connection.
    pub stats: WireStatsSnapshot,
    /// Highest fencing epoch any headend acked with (0 until a failover
    /// bumps it).
    pub epoch: u64,
}

/// Performs the hello handshake on a fresh connection: announces the
/// protocol version, the highest epoch seen so far and (on reconnect)
/// the node identity to resume, then waits for the ack.
///
/// The carousel broadcasts to every connection, so wakeups can land
/// before the ack — they come back in the returned stash for replay.
/// The hello itself is re-sent on a short timer: a single mangled frame
/// (fault injection, hostile networks) must not strand the handshake,
/// and a duplicate hello just gets the same ack again. An ack whose
/// epoch is *below* `min_epoch` is a fencing violation (a revenant
/// primary) and fails the handshake.
fn hello_handshake(
    client: &WireClient,
    min_epoch: u64,
    resume: Option<NodeId>,
) -> Result<(NodeId, u64, Vec<WireMsg>), WireError> {
    let hello = WireMsg::Hello {
        proto: PROTO_VERSION,
        epoch: min_epoch,
        resume,
    };
    if !client.send(&hello) {
        return Err(WireError::Protocol("connection closed during hello".into()));
    }
    let mut stashed = Vec::new();
    let deadline = Instant::now() + HELLO_TIMEOUT;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(WireError::Timeout("no HelloAck from headend"));
        }
        match client
            .receiver()
            .recv_timeout(left.min(Duration::from_millis(100)))
        {
            Ok(WireMsg::HelloAck { node, epoch }) => {
                if epoch < min_epoch {
                    return Err(WireError::Protocol(format!(
                        "headend acked with stale epoch {epoch} (this node has seen {min_epoch})"
                    )));
                }
                return Ok((node, epoch, stashed));
            }
            Ok(other) => stashed.push(other),
            Err(_) => {
                if client.is_closed() {
                    return Err(WireError::Protocol("connection closed during hello".into()));
                }
                let _ = client.send(&hello);
            }
        }
    }
}

/// Redials the headend until `window` expires, re-running the handshake
/// with the node's identity and epoch floor. Returns the new connection
/// plus the (possibly higher) epoch it acked with. Bails out early when
/// `closing` flips — the node loop finished mid-outage and nobody wants
/// the connection anymore.
fn redial(
    addr: SocketAddr,
    mkcfg: &dyn Fn() -> ClientConfig,
    node: NodeId,
    min_epoch: u64,
    window: Duration,
    closing: &AtomicBool,
) -> Option<(WireClient, u64, Vec<WireMsg>)> {
    let deadline = Instant::now() + window;
    loop {
        if closing.load(Ordering::SeqCst) {
            return None;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return None;
        }
        let mut cfg = mkcfg();
        cfg.connect_timeout = left.min(Duration::from_millis(500));
        match WireClient::connect(addr, cfg) {
            Ok(client) => match hello_handshake(&client, min_epoch, Some(node)) {
                Ok((_, epoch, stashed)) => return Some((client, epoch, stashed)),
                // Stale epoch or a connection that died mid-handshake:
                // drop it and keep dialing inside the window.
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            },
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Runs one PNA against a socket headend until the plane shuts down:
/// dial, handshake, then the standard `node_main` loop over a
/// `RemoteLink`. Blocks until the headend broadcasts `Shutdown` or the
/// connection dies — unless [`WirePnaConfig::reconnect`] is set, in
/// which case a dead connection triggers redial-and-resume (failover).
pub fn run_wire_pna(config: WirePnaConfig) -> Result<WirePnaReport, WireError> {
    let start = Instant::now();
    let injector = Arc::new(FaultInjector::new(
        config.faults.clone(),
        config.seed ^ 0xFA17_FA17,
    ));
    let mkcfg = {
        let key = config.key.clone();
        let telemetry = config.telemetry.clone();
        let faults = config.faults.clone();
        let seed = config.seed;
        let connect_timeout = config.connect_timeout;
        move || {
            let mut ccfg = ClientConfig::new(Integrity::hmac(&key));
            ccfg.connect_timeout = connect_timeout;
            ccfg.telemetry = telemetry.clone();
            // Wire-level faults roll under a seed distinct from the
            // protocol injector's so the fault streams don't correlate.
            ccfg.injector = FaultInjector::new(faults.clone(), seed ^ 0x3D1E_C7A1);
            ccfg
        }
    };
    let client = WireClient::connect(config.addr, mkcfg())?;
    let (node, epoch, stashed) = hello_handshake(&client, 0, None)?;

    let link = Arc::new(RemoteLink::new(client, config.reconnect.is_some(), epoch));
    let (bus_tx, bus_rx) = unbounded();
    for msg in stashed {
        demux(&link, &bus_tx, msg);
    }
    let demux_thread = std::thread::Builder::new()
        .name("wire-pna-demux".into())
        .spawn({
            let link = Arc::clone(&link);
            let bus_tx = bus_tx.clone();
            let addr = config.addr;
            let reconnect = config.reconnect;
            move || loop {
                let client = link.client();
                match client.receiver().recv() {
                    Ok(msg) => {
                        // A broadcast Shutdown ends the plane: flip
                        // `closing` so in-flight sends fail fast instead
                        // of masking as wire drops (the node loop would
                        // ride its full retry backoff otherwise), deliver
                        // it, and exit before the headend closes the
                        // socket — a disconnect that must not read as an
                        // outage worth redialing through.
                        if matches!(msg, WireMsg::Shutdown) {
                            link.closing.store(true, Ordering::SeqCst);
                            demux(&link, &bus_tx, msg);
                            break;
                        }
                        demux(&link, &bus_tx, msg);
                    }
                    Err(_) => {
                        drop(client);
                        // Deliberate teardown (node loop finished) or no
                        // reconnect window: the node sees Shutdown and
                        // winds down like any other plane teardown.
                        let window = match reconnect {
                            Some(w) if !link.closing.load(Ordering::SeqCst) => w,
                            _ => {
                                let _ = bus_tx.send(BusMsg::Shutdown);
                                break;
                            }
                        };
                        let floor = link.epoch_seen.load(Ordering::SeqCst);
                        match redial(addr, &mkcfg, node, floor, window, &link.closing) {
                            Some((new_client, epoch, stashed)) => {
                                link.epoch_seen.store(epoch, Ordering::SeqCst);
                                link.swap_client(new_client);
                                // The node loop may have finished while we
                                // were redialing; don't serve a link that
                                // is tearing down.
                                if link.closing.load(Ordering::SeqCst) {
                                    link.client().request_close();
                                    break;
                                }
                                for msg in stashed {
                                    demux(&link, &bus_tx, msg);
                                }
                            }
                            None => {
                                // Same deal: the outage outlived the
                                // window, so stop masking send failures.
                                link.closing.store(true, Ordering::SeqCst);
                                let _ = bus_tx.send(BusMsg::Shutdown);
                                break;
                            }
                        }
                    }
                }
            }
        })
        .map_err(WireError::Io)?;

    node_main(
        node,
        config.key.clone(),
        bus_rx,
        NodeLink::Remote(Arc::clone(&link)),
        config.heartbeat_interval,
        config.seed,
        start,
        injector,
        config.telemetry.clone(),
    );

    // Unblock the demultiplexer (its recv fails once the reader stops,
    // and `closing` keeps it from redialing a deliberate teardown), then
    // let the link's last owner join the reader thread on drop.
    link.closing.store(true, Ordering::SeqCst);
    link.client().request_close();
    let _ = demux_thread.join();
    let stats = link.client().stats().snapshot();
    let epoch = link.epoch_seen.load(Ordering::SeqCst);
    Ok(WirePnaReport { node, stats, epoch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trips_with_database_attached() {
        let img = AlignmentImage::small_demo();
        let db = random_sequence(img.db_len, img.db_seed);
        let bytes = encode_image(&img, &db);
        let back = decode_image(&bytes).expect("decodes");
        assert_eq!(back.db_seed, img.db_seed);
        assert_eq!(back.k, img.k);
        assert_eq!(back.scoring, img.scoring);
        assert_eq!(back.min_score, img.min_score);
        assert_eq!(
            back.prefetched.as_deref().map(|b| b.as_slice()),
            Some(db.as_slice()),
            "the streamed database rides in `prefetched`"
        );
        // The decoded recipe materializes from the streamed bytes, so a
        // remote node and a local one index the identical database.
        assert_eq!(back.materialize().db(), img.materialize().db());
    }

    #[test]
    fn truncated_image_bytes_error_out() {
        let img = AlignmentImage::small_demo();
        let db = random_sequence(1000, 7);
        let mut bytes = encode_image(&img, &db);
        bytes.truncate(bytes.len() / 2);
        assert!(decode_image(&bytes).is_err());
    }

    #[test]
    fn wire_batch_conversion_round_trips() {
        use oddci_types::{DataSize, JobId, SimDuration, TaskId};
        use oddci_workload::Task;
        let task = Task::new(
            TaskId::new(3),
            DataSize::from_bytes(100),
            SimDuration::from_millis(5),
            DataSize::from_bytes(8),
        );
        let reply = TaskBatchReply::Assigned {
            job: JobId::new(9),
            tasks: vec![(task, Arc::new(vec![1, 2, 3]))],
        };
        match from_wire_batch(to_wire_batch(reply)) {
            TaskBatchReply::Assigned { job, tasks } => {
                assert_eq!(job, JobId::new(9));
                assert_eq!(tasks.len(), 1);
                assert_eq!(*tasks[0].1, vec![1, 2, 3]);
            }
            TaskBatchReply::Drained => panic!("batch survived the round trip"),
        }
        assert!(matches!(
            from_wire_batch(to_wire_batch(TaskBatchReply::Drained)),
            TaskBatchReply::Drained
        ));
    }
}
