//! Durability snapshots of headend state.
//!
//! A snapshot is everything a standby headend needs to adopt a crashed
//! primary's fleet mid-job: per-shard Controller state (membership,
//! heartbeat ledgers, message-id namespaces), the Backend's task ledgers,
//! the Provider's request table, the hub's job bookkeeping, the carousel's
//! image recipes and the wire plane's node-id namespace. Timestamps are
//! stored as *ages* relative to the snapshot instant — the standby runs
//! its own clock, so absolute instants from the primary would be
//! meaningless there (see `SimTime::saturating_sub`).
//!
//! On disk a snapshot is a small self-describing container:
//!
//! ```text
//! magic "OSNP" | version u16 | epoch u64 | payload len u32 | payload | crc32 u32
//! ```
//!
//! (all integers little-endian; the checksum covers version..payload).
//! The payload is the serde_json encoding of [`SnapshotState`] — the
//! format is versioned so a future layout change bumps
//! [`SNAPSHOT_VERSION`] instead of silently misreading old files, and
//! checksummed so a torn write (crash mid-snapshot) is *detected* rather
//! than adopted. [`write_file`] writes to a temporary sibling and renames
//! into place, so the published path always holds a complete snapshot.

use crate::image::AlignmentImage;
use oddci_core::autoscale::AutoscaleExport;
use oddci_core::backend::BackendState;
use oddci_core::controller::ControllerState;
use oddci_core::provider::ProviderState;
use oddci_types::{InstanceId, JobId, TaskId};
use oddci_wire::frame::crc32_parts;
use oddci_workload::alignment::Scoring;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// File magic identifying a headend snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OSNP";
/// Container layout version this build writes and reads.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Conventional file name inside a `--snapshot-dir`.
pub const SNAPSHOT_FILE: &str = "headend.snap";

/// Fixed container overhead: magic + version + epoch + length + checksum.
const CONTAINER_OVERHEAD: usize = 4 + 2 + 8 + 4 + 4;

/// An [`AlignmentImage`] recipe in serializable form. The materialized
/// database is *not* exported — every field needed to regenerate it
/// deterministically is, so adopted wakeups rebuild the identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageExport {
    /// Seed regenerating the reference database.
    pub db_seed: u64,
    /// Database length in bases.
    pub db_len: u64,
    /// Seed word length for the index.
    pub k: u64,
    /// Alignment match score.
    pub matched: i32,
    /// Alignment mismatch penalty.
    pub mismatch: i32,
    /// Alignment gap penalty.
    pub gap: i32,
    /// Window for seed extension.
    pub window: u64,
    /// Minimum reported score.
    pub min_score: i32,
}

impl ImageExport {
    /// Captures a recipe (dropping any prefetched database bytes — they
    /// regenerate from the seed).
    pub fn from_image(image: &AlignmentImage) -> ImageExport {
        ImageExport {
            db_seed: image.db_seed,
            db_len: image.db_len as u64,
            k: image.k as u64,
            matched: image.scoring.matched,
            mismatch: image.scoring.mismatch,
            gap: image.scoring.gap,
            window: image.window as u64,
            min_score: image.min_score,
        }
    }

    /// Rebuilds the runnable recipe.
    pub fn to_image(&self) -> AlignmentImage {
        AlignmentImage {
            db_seed: self.db_seed,
            db_len: self.db_len as usize,
            k: self.k as usize,
            scoring: Scoring {
                matched: self.matched,
                mismatch: self.mismatch,
                gap: self.gap,
            },
            window: self.window as usize,
            min_score: self.min_score,
            prefetched: None,
        }
    }
}

/// Complete exported headend state — the payload of one snapshot.
///
/// Maps are exported as sorted pair vectors (not JSON objects) because
/// their keys are numeric newtypes, and so the encoding is byte-stable
/// for the round-trip property tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotState {
    /// The writing headend's fencing epoch.
    pub epoch: u64,
    /// Microseconds on the writing headend's clock when the snapshot was
    /// cut — the replay boundary for trailing trace events.
    pub taken_at_us: u64,
    /// Per-shard Controller state, in shard order. A standby must run the
    /// same shard count to adopt (message-id namespaces are `mod shards`).
    pub shards: Vec<ControllerState>,
    /// The shared Backend's task ledgers.
    pub backend: BackendState,
    /// The Provider's request table.
    pub provider: ProviderState,
    /// Instance → job routing.
    pub instance_job: Vec<(InstanceId, JobId)>,
    /// Per-job query payloads (task index → query bytes).
    pub job_queries: Vec<(JobId, Vec<Vec<u8>>)>,
    /// Per-job best scores reported so far.
    pub job_scores: Vec<(JobId, Vec<(TaskId, i32)>)>,
    /// Wakeup broadcasts published per instance (Provider report input).
    pub wakeups: Vec<(InstanceId, u32)>,
    /// Image recipes the carousel attaches to wakeups.
    pub images: Vec<(InstanceId, ImageExport)>,
    /// Next node id the wire plane would assign — adopted so fresh
    /// connections never collide with resumed ones.
    pub wire_next_node: u64,
    /// Node ids the wire plane has handed out (resume validation).
    pub wire_nodes: Vec<u64>,
    /// Autoscale reconciler state, when elastic sizing is on: the
    /// desired-state record a standby resumes scaling from without
    /// double-provisioning. Cooldowns are stored as *remaining*
    /// durations (the standby's clock starts at adoption). Absent in
    /// snapshots cut before elastic sizing existed.
    #[serde(default)]
    pub autoscale: Option<AutoscaleExport>,
}

/// Why a snapshot failed to decode. Every variant is a clean error — a
/// truncated or corrupt file must never panic the adopting headend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the fixed container overhead.
    TooShort,
    /// The magic bytes are not `OSNP`.
    BadMagic,
    /// A container version this build does not read.
    UnsupportedVersion(u16),
    /// The declared payload extends past the available bytes (torn write).
    Truncated,
    /// The checksum does not match (bit rot or torn write).
    ChecksumMismatch,
    /// The payload is not a valid [`SnapshotState`] encoding.
    Payload(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot shorter than its container header"),
            SnapshotError::BadMagic => write!(f, "not a headend snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-payload"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Payload(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes a snapshot into its on-disk container form.
pub fn encode(state: &SnapshotState) -> Vec<u8> {
    let payload = serde_json::to_string(state)
        .map(String::into_bytes)
        .unwrap_or_default();
    let mut out = Vec::with_capacity(CONTAINER_OVERHEAD + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&state.epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32_parts(&[&out[4..]]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a container. Any malformed input — truncation at any byte,
/// flipped bits, wrong magic — comes back as a [`SnapshotError`].
pub fn decode(bytes: &[u8]) -> Result<SnapshotState, SnapshotError> {
    if bytes.len() < CONTAINER_OVERHEAD {
        return Err(SnapshotError::TooShort);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let len = u32::from_le_bytes([bytes[14], bytes[15], bytes[16], bytes[17]]) as usize;
    let payload_end = CONTAINER_OVERHEAD - 4 + len;
    if bytes.len() < payload_end + 4 {
        return Err(SnapshotError::Truncated);
    }
    let crc = u32::from_le_bytes([
        bytes[payload_end],
        bytes[payload_end + 1],
        bytes[payload_end + 2],
        bytes[payload_end + 3],
    ]);
    if crc32_parts(&[&bytes[4..payload_end]]) != crc {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let payload = &bytes[CONTAINER_OVERHEAD - 4..payload_end];
    let text = std::str::from_utf8(payload)
        .map_err(|e| SnapshotError::Payload(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| SnapshotError::Payload(e.to_string()))
}

/// Reads just the epoch from a container header, without decoding the
/// payload (the standby CLI prints it before adopting).
pub fn peek_epoch(bytes: &[u8]) -> Result<u64, SnapshotError> {
    if bytes.len() < CONTAINER_OVERHEAD {
        return Err(SnapshotError::TooShort);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    Ok(u64::from_le_bytes([
        bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13],
    ]))
}

/// Writes `state` to `path` atomically: the bytes land in a `.tmp`
/// sibling first and are renamed into place, so a reader never observes
/// a half-written snapshot at the published path.
pub fn write_file(path: &Path, state: &SnapshotState) -> io::Result<()> {
    let bytes = encode(state);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Reads and decodes a snapshot file. Decode failures surface as
/// `InvalidData` I/O errors with the [`SnapshotError`] as the message.
pub fn read_file(path: &Path) -> io::Result<SnapshotState> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotState {
        SnapshotState {
            epoch: 3,
            taken_at_us: 1_234_567,
            shards: Vec::new(),
            backend: BackendState { jobs: Vec::new() },
            provider: ProviderState {
                requests: Vec::new(),
                next: 7,
            },
            instance_job: vec![(InstanceId::new(1), JobId::new(9))],
            job_queries: vec![(JobId::new(9), vec![vec![1, 2, 3], vec![4]])],
            job_scores: vec![(JobId::new(9), vec![(TaskId::new(0), 42)])],
            wakeups: vec![(InstanceId::new(1), 2)],
            images: vec![(
                InstanceId::new(1),
                ImageExport::from_image(&AlignmentImage::small_demo()),
            )],
            wire_next_node: 5,
            wire_nodes: vec![0, 1, 2, 3, 4],
            autoscale: None,
        }
    }

    #[test]
    fn pre_autoscale_payload_still_decodes() {
        // A version-1 payload without the `autoscale` key (written before
        // elastic sizing existed) must decode with the field defaulted.
        let mut snap = sample();
        snap.autoscale = Some(AutoscaleExport {
            desired: 3,
            cooldown_remaining_micros: 0,
            pending_replace: false,
            ticks: 1,
            scale_ups: 0,
            scale_downs: 0,
            replacements: 0,
        });
        let json = serde_json::to_string(&snap).expect("encodes");
        let stripped: serde_json::Value = {
            let mut v: serde_json::Value = serde_json::from_str(&json).expect("parses");
            match &mut v {
                serde_json::Value::Object(entries) => {
                    entries.retain(|(key, _)| key != "autoscale");
                }
                other => panic!("snapshot payload is not an object: {other:?}"),
            }
            v
        };
        let back: SnapshotState = serde_json::from_value(stripped).expect("old payload decodes");
        assert_eq!(back.autoscale, None);
        assert_eq!(back.epoch, snap.epoch);
    }

    #[test]
    fn container_round_trips() {
        let snap = sample();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes), Ok(snap.clone()));
        assert_eq!(peek_epoch(&bytes), Ok(3));
    }

    #[test]
    fn truncation_at_every_length_is_a_clean_error() {
        let bytes = encode(&sample());
        for n in 0..bytes.len() {
            assert!(
                decode(&bytes[..n]).is_err(),
                "a {n}-byte prefix of a {}-byte snapshot must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::ChecksumMismatch) | Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(SnapshotError::BadMagic));
        let mut bytes = encode(&sample());
        bytes[4] = 0xEE; // version 0xEE??
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn image_recipe_round_trips() {
        let img = AlignmentImage::small_demo();
        let back = ImageExport::from_image(&img).to_image();
        assert_eq!(back, img);
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("oddci-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(SNAPSHOT_FILE);
        let snap = sample();
        write_file(&path, &snap).expect("write");
        assert_eq!(read_file(&path).expect("read"), snap);
        assert!(
            !path.with_extension("tmp").exists(),
            "the temporary is renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
