#![forbid(unsafe_code)]

//! The live OddCI runtime: real threads, real channels, real computation.
//!
//! This is the reproduction's analog of the paper's §4.4 proof-of-concept
//! prototype (a Java Provider/Controller plus a PNA Xlet running in the
//! XletView/OpenGinga emulators). Every receiver is an OS thread hosting
//! the **same [`Pna`](oddci_core::Pna) state machine the simulator uses**;
//! the broadcast channel is an in-process fan-out [`bus`]; heartbeats,
//! probability-gated wakeups, instance trimming, dismantle — the whole
//! §3.2 protocol — run for real, and the "application image" is a genuine
//! sequence-alignment workload executed with
//! [`oddci_workload::alignment`].
//!
//! # Example
//!
//! ```
//! use oddci_live::{LiveConfig, LiveOddci};
//! use std::time::Duration;
//!
//! let live = LiveOddci::start(LiveConfig { nodes: 4, ..Default::default() });
//! let spec = oddci_live::AlignmentImage::small_demo();
//! let outcome = live
//!     .run_alignment_job(spec, 8 /* queries */, 3 /* instance size */,
//!                        Duration::from_secs(30))
//!     .expect("job completes");
//! assert_eq!(outcome.scores.len(), 8);
//! live.shutdown();
//! ```

pub mod bus;
pub mod headend;
pub mod image;
pub mod runtime;
pub mod snapshot;
pub mod wire;

pub use bus::BroadcastBus;
pub use image::{AlignmentImage, LiveBroadcast};
pub use runtime::{HeadendMode, JobOutcome, LiveConfig, LiveOddci, ShutdownReport};
pub use snapshot::{SnapshotError, SnapshotState, SNAPSHOT_FILE};
pub use wire::{run_wire_pna, WirePnaConfig, WirePnaReport};
