//! The in-process broadcast bus: one publisher, many subscribers, every
//! subscriber sees every message — the live-plane stand-in for the DTV
//! carousel's one-to-many transmission.

use oddci_check::sync::{unbounded, Mutex, Receiver, Sender};

/// A clone-fan-out broadcast channel.
pub struct BroadcastBus<T: Clone> {
    subscribers: Mutex<Vec<Sender<T>>>,
}

impl<T: Clone> Default for BroadcastBus<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> BroadcastBus<T> {
    /// Creates a bus with no subscribers.
    pub fn new() -> Self {
        BroadcastBus {
            subscribers: Mutex::named(Vec::new(), "live.bus.subscribers"),
        }
    }

    /// Subscribes; the returned receiver sees every message published
    /// *after* this call (a receiver tuning in mid-broadcast misses what
    /// came before — just like a real carousel-less transmission; the
    /// runtime re-publishes periodically to model carousel repetition).
    pub fn subscribe(&self) -> Receiver<T> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes to every live subscriber; hung-up subscribers are pruned.
    /// Returns the number of subscribers reached.
    pub fn publish(&self, msg: &T) -> usize {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(msg.clone()).is_ok());
        subs.len()
    }

    /// Current subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subscriber_sees_every_message() {
        let bus = BroadcastBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.publish(&1), 2);
        assert_eq!(bus.publish(&2), 2);
        assert_eq!(a.try_recv(), Ok(1));
        assert_eq!(a.try_recv(), Ok(2));
        assert_eq!(b.try_recv(), Ok(1));
        assert_eq!(b.try_recv(), Ok(2));
    }

    #[test]
    fn late_subscribers_miss_earlier_messages() {
        let bus = BroadcastBus::new();
        bus.publish(&1);
        let late = bus.subscribe();
        bus.publish(&2);
        assert_eq!(late.try_recv(), Ok(2));
        assert!(late.try_recv().is_err());
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = BroadcastBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        drop(b);
        assert_eq!(bus.publish(&7), 1);
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(a.try_recv(), Ok(7));
    }

    #[test]
    fn publish_from_multiple_threads() {
        use std::sync::Arc;
        let bus = Arc::new(BroadcastBus::new());
        let rx = bus.subscribe();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let bus = Arc::clone(&bus);
                std::thread::spawn(move || {
                    for j in 0..100 {
                        bus.publish(&(i * 100 + j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
