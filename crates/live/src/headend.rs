//! The sharded multi-threaded live headend.
//!
//! The paper's Controller must "serve millions of tuned devices" over
//! individual direct channels (§3.2); a single sequential headend loop
//! serializes carousel publishing, heartbeat consolidation and task
//! dispatch behind one thread. This module splits the headend into
//! cooperating threads over bounded channels:
//!
//! * **carousel thread** — owns the broadcast bus and the instance→image
//!   map; everything that reaches the §3.1 broadcast channel goes through
//!   it (one publisher, exactly like a real carousel injector);
//! * **N controller shards** — each owns a private
//!   [`oddci_core::Controller`] covering a disjoint slice of
//!   node membership ([`shard_of`](oddci_core::sharded::shard_of) of the
//!   node id), with its own heartbeat ledger, loss detection and
//!   recomposition. Shards sign from disjoint message-id namespaces so
//!   PNA carousel-repeat dedup never drops a sibling shard's message;
//! * **D dispatch workers** — a task-dispatch pool in front of the shared
//!   Backend, behind a sharded work queue (node id → queue). Workers
//!   serve *batches* of tasks per round trip
//!   ([`Backend::fetch_batch`](oddci_core::Backend::fetch_batch)), which
//!   is where the throughput over the single loop comes from: one channel
//!   round trip amortizes across `batch` tasks.
//!
//! Shared job state (Backend, Provider, per-job queries/scores) lives in
//! a `Hub` behind one mutex. The locking rule that keeps this
//! deadlock-free: **never send on a channel while holding the hub lock**
//! — every handler computes under the lock, drops it, then sends.
//!
//! Shutdown order (the barrier): the runtime publishes `Shutdown` on the
//! bus and joins every node first, then dispatch workers, then shards,
//! then the carousel — so every thread that might still *receive* from a
//! channel outlives every thread that might still *send* on it.

use crate::bus::BroadcastBus;
use crate::image::{AlignmentImage, LiveBroadcast};
use crate::runtime::{wall_now, BusMsg, LiveConfig, TaskBatchReply};
use crate::snapshot::{ImageExport, SnapshotState};
use oddci_check::sync::{bounded, Mutex, Receiver, RecvTimeoutError, Sender};
use oddci_core::autoscale::{Reconciler, ScaleDecision, ScaleInputs};
use oddci_core::backend::Backend;
use oddci_core::controller::{
    Controller, ControllerOutput, ControllerPolicy, ControllerState, InstanceRequest,
};
use oddci_core::messages::{ControlMessage, Heartbeat, HeartbeatReply};
use oddci_core::provider::{JobReport, Provider, ProviderRequest};
use oddci_core::sharded::split_target;
use oddci_faults::FaultInjector;
use oddci_telemetry::{Phase, Telemetry, CONTROL_TRACK};
use oddci_types::{HeartbeatConfig, InstanceId, JobId, NodeId, SimDuration, SimTime, TaskId};
use oddci_workload::Job;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Capacity of each shard's and dispatch worker's inbox. Senders block
/// when a queue is full — backpressure, not unbounded memory.
const QUEUE_CAP: usize = 1024;
/// Capacity of the carousel thread's inbox (control traffic is sparse).
const CAROUSEL_CAP: usize = 256;
/// How long a snapshot export/import waits for a shard or the carousel
/// to answer before declaring the headend unhealthy.
const EXPORT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Traffic into the carousel thread.
pub(crate) enum CarouselMsg {
    /// Remember the image to attach to this instance's wakeups.
    Register {
        instance: InstanceId,
        image: Arc<AlignmentImage>,
    },
    /// Publish a signed control message (from any shard).
    Publish(oddci_core::messages::SignedMessage),
    /// Export the registered image recipes for a durability snapshot.
    Export {
        reply: Sender<Vec<(InstanceId, ImageExport)>>,
    },
    Shutdown,
}

/// Traffic into one controller shard.
pub(crate) enum ShardMsg {
    /// A heartbeat from a node this shard owns.
    Heartbeat {
        hb: Heartbeat,
        reply: Sender<HeartbeatReply>,
    },
    /// Admit an instance (coordinator-allocated id, per-shard target).
    Admit {
        instance: InstanceId,
        request: InstanceRequest,
    },
    /// Dismantle an instance; only the home shard publishes the reset.
    Dismantle {
        instance: InstanceId,
        publish: bool,
    },
    /// Steer this shard's slice of an instance to a new per-shard target
    /// (autoscale reconciliation). Growth rides the next tick's
    /// recomposition wakeup; shrinking trims lazily via heartbeat
    /// replies.
    Resize {
        instance: InstanceId,
        target: u64,
    },
    /// Spot-style airtime revocation: the broadcaster reclaimed the
    /// channel, so every member of the instance is evicted at once and
    /// their in-flight tasks re-queued.
    Revoke {
        instance: InstanceId,
    },
    /// Export this shard's Controller state for a durability snapshot.
    Export {
        reply: Sender<ControllerState>,
    },
    /// Replace this shard's Controller state from a snapshot (standby
    /// adoption); the reply is the completion barrier.
    Import {
        state: ControllerState,
        reply: Sender<()>,
    },
    Shutdown,
}

/// Traffic into one dispatch worker.
pub(crate) enum DispatchMsg {
    /// A node asks for up to `max` tasks of its instance's job.
    Request {
        instance: InstanceId,
        node: NodeId,
        max: usize,
        reply: Sender<TaskBatchReply>,
    },
    /// A node uploads a batch of results.
    Results {
        job: JobId,
        node: NodeId,
        results: Vec<(TaskId, i32)>,
    },
    Shutdown,
}

/// Job state shared by dispatch workers, shards and the coordinator.
struct Hub {
    backend: Backend,
    provider: Provider,
    instance_job: BTreeMap<InstanceId, JobId>,
    job_instance: BTreeMap<JobId, InstanceId>,
    job_queries: BTreeMap<JobId, Vec<Arc<Vec<u8>>>>,
    job_scores: BTreeMap<JobId, BTreeMap<TaskId, i32>>,
    /// Wakeup broadcasts published per instance (sum over shards), for
    /// the Provider's report.
    wakeups: BTreeMap<InstanceId, u32>,
}

/// Handles to the sharded headend's threads and channels.
pub(crate) struct ShardedHeadend {
    hub: Arc<Mutex<Hub>>,
    carousel_tx: Sender<CarouselMsg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    dispatch_txs: Vec<Sender<DispatchMsg>>,
    carousel: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    dispatch_threads: Vec<JoinHandle<()>>,
    next_instance: AtomicU64,
    start: Instant,
}

impl ShardedHeadend {
    /// Spawns the carousel thread, `shards` controller shards and
    /// `dispatch` dispatch workers.
    pub(crate) fn start(
        config: &LiveConfig,
        shards: usize,
        dispatch: usize,
        bus: Arc<BroadcastBus<BusMsg>>,
        start: Instant,
        injector: Arc<FaultInjector>,
    ) -> ShardedHeadend {
        assert!(shards > 0 && dispatch > 0, "validated by LiveConfig");
        let tele = config.telemetry.clone();
        // Send-sensitive: the module-level locking rule ("never send on a
        // channel while holding the hub lock") is enforced at runtime —
        // under ODDCI_CHECK=1 any `Sender::send` on a thread holding this
        // lock is reported as a violation.
        let hub = Arc::new(Mutex::named_send_sensitive(
            Hub {
                backend: Backend::new(),
                provider: Provider::new(),
                instance_job: BTreeMap::new(),
                job_instance: BTreeMap::new(),
                job_queries: BTreeMap::new(),
                job_scores: BTreeMap::new(),
                wakeups: BTreeMap::new(),
            },
            "live.hub",
        ));

        let (carousel_tx, carousel_rx) = bounded(CAROUSEL_CAP);
        // Streaming-sink lane layout: carousel on lane 0, controller
        // shard `i` on lane `1 + i`, dispatch worker `j` on lane
        // `1 + shards + j`. Every headend thread gets a lane-pinned
        // telemetry handle, so their trace offers enqueue into disjoint
        // queues and never contend on a sink mutex (no-op without a
        // sink). Node threads keep the unpinned handle and spread by
        // track id.
        let carousel = {
            let hub = Arc::clone(&hub);
            let tele = tele.with_sink_lane(0);
            std::thread::spawn(move || carousel_main(carousel_rx, bus, hub, start, tele))
        };

        // Per-shard Controller policy: same constants as the single loop,
        // but the assumed audience is this shard's expected slice and
        // recomposition waits for a live idle node (a saturated or empty
        // slice must not spam the carousel every tick).
        let policy = ControllerPolicy {
            heartbeat: HeartbeatConfig {
                interval: SimDuration::from_micros(config.heartbeat_interval.as_micros() as u64),
                // Generous: live nodes block while computing batches.
                miss_threshold: 50,
                message_bytes: 128,
            },
            sizing_slack: 1.0,
            recompose_threshold: 0.99,
            assumed_audience: (config.nodes / shards as u64).max(1),
            recompose_requires_idle: true,
        };

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_threads = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = bounded(QUEUE_CAP);
            shard_txs.push(tx);
            let key = config.key.clone();
            let policy = policy.clone();
            let tick = config.controller_tick;
            let carousel_tx = carousel_tx.clone();
            let hub = Arc::clone(&hub);
            let tele = tele.with_sink_lane(1 + index);
            shard_threads.push(std::thread::spawn(move || {
                shard_main(
                    index,
                    shards,
                    key,
                    policy,
                    tick,
                    rx,
                    carousel_tx,
                    hub,
                    start,
                    tele,
                )
            }));
        }

        let mut dispatch_txs = Vec::with_capacity(dispatch);
        let mut dispatch_threads = Vec::with_capacity(dispatch);
        for index in 0..dispatch {
            let (tx, rx) = bounded(QUEUE_CAP);
            dispatch_txs.push(tx);
            let hub = Arc::clone(&hub);
            let shard_txs = shard_txs.clone();
            let inj = Arc::clone(&injector);
            let tele = tele.with_sink_lane(1 + shards + index);
            dispatch_threads.push(std::thread::spawn(move || {
                dispatch_main(index, rx, hub, shard_txs, inj, start, tele)
            }));
        }

        ShardedHeadend {
            hub,
            carousel_tx,
            shard_txs,
            dispatch_txs,
            carousel: Some(carousel),
            shard_threads,
            dispatch_threads,
            next_instance: AtomicU64::new(0),
            start,
        }
    }

    /// Senders for routing node traffic (heartbeats by shard, task
    /// requests/results by dispatch queue).
    pub(crate) fn node_links(&self) -> (Vec<Sender<ShardMsg>>, Vec<Sender<DispatchMsg>>) {
        (self.shard_txs.clone(), self.dispatch_txs.clone())
    }

    /// A detached handle the snapshot writer thread exports through.
    pub(crate) fn snapshot_handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            hub: Arc::clone(&self.hub),
            carousel_tx: self.carousel_tx.clone(),
            shard_txs: self.shard_txs.clone(),
            start: self.start,
        }
    }

    /// Replaces this headend's state from a snapshot: every shard's
    /// Controller, the carousel's image table and the hub's job state.
    /// Must run before node traffic arrives (standby adoption happens
    /// before the wire server binds).
    pub(crate) fn import_state(&self, snap: &SnapshotState) -> Result<(), String> {
        if snap.shards.len() != self.shard_txs.len() {
            return Err(format!(
                "snapshot has {} controller shards but this headend runs {} — \
                 message-id namespaces are per-shard, so the counts must match",
                snap.shards.len(),
                self.shard_txs.len()
            ));
        }
        for (tx, state) in self.shard_txs.iter().zip(&snap.shards) {
            let (rtx, rrx) = bounded(1);
            tx.send(ShardMsg::Import {
                state: state.clone(),
                reply: rtx,
            })
            .map_err(|_| "controller shard gone during import".to_string())?;
            rrx.recv_timeout(EXPORT_TIMEOUT)
                .map_err(|_| "controller shard did not acknowledge import".to_string())?;
        }
        for (instance, recipe) in &snap.images {
            self.carousel_tx
                .send(CarouselMsg::Register {
                    instance: *instance,
                    image: Arc::new(recipe.to_image()),
                })
                .map_err(|_| "carousel gone during import".to_string())?;
        }
        let now = wall_now(&self.start);
        {
            let mut hub = self.hub.lock();
            hub.backend.import_state(snap.backend.clone(), now);
            hub.provider.import_state(snap.provider.clone(), now);
            hub.instance_job = snap.instance_job.iter().copied().collect();
            hub.job_instance = snap
                .instance_job
                .iter()
                .map(|&(instance, job)| (job, instance))
                .collect();
            hub.job_queries = snap
                .job_queries
                .iter()
                .map(|(job, queries)| (*job, queries.iter().map(|q| Arc::new(q.clone())).collect()))
                .collect();
            hub.job_scores = snap
                .job_scores
                .iter()
                .map(|(job, scores)| (*job, scores.iter().copied().collect()))
                .collect();
            hub.wakeups = snap.wakeups.iter().copied().collect();
        }
        let next_instance = snap
            .instance_job
            .iter()
            .map(|&(instance, _)| instance.raw() + 1)
            .max()
            .unwrap_or(0);
        self.next_instance.store(next_instance, Ordering::Relaxed);
        Ok(())
    }

    /// Re-applies `NodeLost` events recorded after a snapshot was cut:
    /// the crashed primary may have detected losses (re-queuing their
    /// assignments) that the snapshot predates. Replaying them means the
    /// standby re-queues immediately instead of waiting out its own
    /// miss-threshold window. Returns how many losses were applied.
    pub(crate) fn replay_node_losses(&self, nodes: &[NodeId]) -> u64 {
        let mut hub = self.hub.lock();
        let mut applied = 0u64;
        for &node in nodes {
            applied += u64::from(!hub.backend.node_lost(node).is_empty());
        }
        applied
    }

    /// Wall-clock runtime instant, in microseconds on this headend's
    /// clock (a standby's clock starts at adoption, not at the primary's
    /// boot — snapshot import rebases ages accordingly).
    pub(crate) fn now_us(&self) -> u64 {
        wall_now(&self.start).as_micros()
    }

    /// Provider requests still running. A standby uses this right after
    /// adoption to find the jobs it must keep waiting on.
    pub(crate) fn running_jobs(&self) -> Vec<ProviderRequest> {
        self.hub.lock().provider.running().collect()
    }

    /// Registers a job, admits its instance on every shard (split
    /// targets) and opens the Provider request. Runs on the caller's
    /// thread — the coordinator is whoever submits.
    pub(crate) fn submit(
        &self,
        job: Job,
        queries: Vec<Arc<Vec<u8>>>,
        image: Arc<AlignmentImage>,
        target: u64,
    ) -> ProviderRequest {
        let now = wall_now(&self.start);
        let job_id = job.id;
        let instance = InstanceId::new(self.next_instance.fetch_add(1, Ordering::Relaxed));
        let req = InstanceRequest {
            image: job.image,
            image_size: job.image_size,
            target,
            requirements: Default::default(),
        };
        let request = {
            let mut hub = self.hub.lock();
            hub.backend.register_job(job, now);
            hub.job_queries.insert(job_id, queries);
            hub.job_scores.insert(job_id, BTreeMap::new());
            hub.instance_job.insert(instance, job_id);
            hub.job_instance.insert(job_id, instance);
            hub.provider.open_request(job_id, instance, target, now)
        };
        // Image first, then admissions: the carousel channel preserves
        // causal order, so every shard's wakeup finds the image mapped.
        let _ = self
            .carousel_tx
            .send(CarouselMsg::Register { instance, image });
        let targets = split_target(target, self.shard_txs.len());
        for (tx, shard_target) in self.shard_txs.iter().zip(targets) {
            let _ = tx.send(ShardMsg::Admit {
                instance,
                request: InstanceRequest {
                    target: shard_target,
                    ..req
                },
            });
        }
        request
    }

    /// The Provider's report (with per-task scores), once complete.
    pub(crate) fn report(
        &self,
        req: ProviderRequest,
    ) -> Option<(JobReport, BTreeMap<TaskId, i32>)> {
        let hub = self.hub.lock();
        hub.provider.report(req).map(|r| {
            let scores = hub.job_scores.get(&r.job).cloned().unwrap_or_default();
            (r, scores)
        })
    }

    /// Stops dispatch workers, shards and the carousel — in that order,
    /// so receivers outlive senders — joining every thread. Returns the
    /// number of tasks in no ledger (always 0 unless bookkeeping broke)
    /// and how many headend threads exited by panic instead of a clean
    /// return (a panicked thread's ledger contribution is unknown, so
    /// the first number may undercount when the second is nonzero).
    ///
    /// The runtime must have joined every node thread first.
    pub(crate) fn shutdown(mut self) -> (u64, u64) {
        let mut failed = 0u64;
        for tx in &self.dispatch_txs {
            let _ = tx.send(DispatchMsg::Shutdown);
        }
        for h in self.dispatch_threads.drain(..) {
            failed += u64::from(h.join().is_err());
        }
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.shard_threads.drain(..) {
            failed += u64::from(h.join().is_err());
        }
        let _ = self.carousel_tx.send(CarouselMsg::Shutdown);
        if let Some(h) = self.carousel.take() {
            failed += u64::from(h.join().is_err());
        }
        let hub = self.hub.lock();
        let unaccounted = hub
            .job_instance
            .keys()
            .map(|&job| hub.backend.unaccounted_tasks(job))
            .sum();
        (unaccounted, failed)
    }
}

// ---------------------------------------------------------------------
// Snapshot export
// ---------------------------------------------------------------------

/// Channels and shared state a snapshot writer needs to cut a consistent
/// export without owning the headend. Cloned senders keep the export path
/// off the headend's own threads: the writer asks each shard and the
/// carousel over their inboxes and reads the hub under its lock.
pub(crate) struct SnapshotHandle {
    hub: Arc<Mutex<Hub>>,
    carousel_tx: Sender<CarouselMsg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    start: Instant,
}

impl SnapshotHandle {
    /// Cuts one snapshot at the current instant. Returns `None` when the
    /// headend is winding down (a channel closed mid-export) — callers
    /// just skip that cycle.
    ///
    /// Consistency: the Backend/Provider/job tables are read atomically
    /// under the hub lock — that is the task-accounting ground truth. The
    /// per-shard Controller states are collected just before, so they can
    /// trail the hub by the export's own latency; membership and
    /// heartbeat ledgers re-converge from live traffic after adoption, so
    /// that skew is harmless (and the task ledger never is skewed).
    pub(crate) fn export(&self, epoch: u64, wire: (u64, Vec<u64>)) -> Option<SnapshotState> {
        let mut shards = Vec::with_capacity(self.shard_txs.len());
        for tx in &self.shard_txs {
            let (rtx, rrx) = bounded(1);
            tx.send(ShardMsg::Export { reply: rtx }).ok()?;
            shards.push(rrx.recv_timeout(EXPORT_TIMEOUT).ok()?);
        }
        let (rtx, rrx) = bounded(1);
        self.carousel_tx
            .send(CarouselMsg::Export { reply: rtx })
            .ok()?;
        let images = rrx.recv_timeout(EXPORT_TIMEOUT).ok()?;

        let now = wall_now(&self.start);
        let hub = self.hub.lock();
        let snap = SnapshotState {
            epoch,
            taken_at_us: now.as_micros(),
            shards,
            backend: hub.backend.export_state(now),
            provider: hub.provider.export_state(now),
            instance_job: hub.instance_job.iter().map(|(&i, &j)| (i, j)).collect(),
            job_queries: hub
                .job_queries
                .iter()
                .map(|(&job, queries)| (job, queries.iter().map(|q| q.as_ref().clone()).collect()))
                .collect(),
            job_scores: hub
                .job_scores
                .iter()
                .map(|(&job, scores)| (job, scores.iter().map(|(&t, &s)| (t, s)).collect()))
                .collect(),
            wakeups: hub.wakeups.iter().map(|(&i, &w)| (i, w)).collect(),
            images,
            wire_next_node: wire.0,
            wire_nodes: wire.1,
            // Filled in by the runtime, which owns the shared reconciler.
            autoscale: None,
        };
        Some(snap)
    }
}

// ---------------------------------------------------------------------
// Autoscale reconciler thread
// ---------------------------------------------------------------------

/// What the reconciler thread needs to observe and steer the headend:
/// the hub (queue depth, throughput, running instances) and the shard
/// inboxes (resize / revoke commands).
pub(crate) struct ReconcilerLinks {
    hub: Arc<Mutex<Hub>>,
    shard_txs: Vec<Sender<ShardMsg>>,
    start: Instant,
}

impl ShardedHeadend {
    /// Handles for [`spawn_reconciler`].
    pub(crate) fn reconciler_links(&self) -> ReconcilerLinks {
        ReconcilerLinks {
            hub: Arc::clone(&self.hub),
            shard_txs: self.shard_txs.clone(),
            start: self.start,
        }
    }
}

/// Spawns the elastic-sizing control loop. Every `interval` it samples
/// the Backend queue depth, the per-shard heartbeat-lag and membership
/// gauges and the task-fetch p99, feeds them to the shared
/// [`Reconciler`], and applies the decision by resizing every running
/// instance (per-shard split targets). An `airtime-revoked` fault roll
/// first evicts every member ([`ShardMsg::Revoke`]); the reconciler then
/// restores the lost capacity as a [`ScaleDecision::Replace`], bypassing
/// its cooldown. Dropping the returned sender stops the thread.
///
/// Locking rule: the hub lock and the reconciler lock are each dropped
/// before any channel send.
pub(crate) fn spawn_reconciler(
    links: ReconcilerLinks,
    shared: Arc<Mutex<Reconciler>>,
    interval: std::time::Duration,
    injector: Arc<FaultInjector>,
    tele: Telemetry,
) -> (Sender<()>, JoinHandle<()>) {
    let (tx, rx) = bounded::<()>(1);
    let thread = std::thread::spawn(move || {
        let shards = links.shard_txs.len();
        let lag_gauges: Vec<_> = (0..shards)
            .map(|i| {
                tele.registry()
                    .gauge(&format!("controller.heartbeat_lag.shard{i}"))
            })
            .collect();
        let member_gauges: Vec<_> = (0..shards)
            .map(|i| {
                tele.registry()
                    .gauge(&format!("controller.members.shard{i}"))
            })
            .collect();
        let desired_gauge = tele.registry().gauge("provider.desired_size");
        let queue_gauge = tele.registry().gauge("backend.queue_depth");
        let revocations = tele.registry().counter("faults.airtime_revoked");
        let cooldown = shared.lock().policy().cooldown;
        let mut last_sample = (wall_now(&links.start), 0u64);
        // At most one revocation per cooldown window: the fault plan rolls
        // per reconcile tick, and a 100%-rate window would otherwise evict
        // the replacement capacity as fast as it forms.
        let mut revoke_gate = SimTime::ZERO;
        loop {
            match rx.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            let begin = wall_now(&links.start);
            let (instances, queue_depth, completed) = {
                let hub = links.hub.lock();
                let open = hub.backend.open_jobs();
                let queue: u64 = open.iter().map(|&j| hub.backend.pending_count(j)).sum();
                let done: u64 = hub.job_scores.values().map(|s| s.len() as u64).sum();
                let instances: Vec<InstanceId> = open
                    .iter()
                    .filter_map(|j| hub.job_instance.get(j).copied())
                    .collect();
                (instances, queue, done)
            };

            // Spot-like reclamation: evict the whole membership, then let
            // the reconciler's Replace decision restore it.
            if !instances.is_empty() && begin >= revoke_gate && injector.airtime_revoked(begin) {
                for &instance in &instances {
                    for stx in &links.shard_txs {
                        let _ = stx.send(ShardMsg::Revoke { instance });
                    }
                }
                revocations.inc();
                shared.lock().observe_revocation();
                revoke_gate = begin + cooldown;
            }

            let elapsed = begin.since(last_sample.0).as_secs_f64();
            let tasks_per_sec = if elapsed > 0.0 {
                completed.saturating_sub(last_sample.1) as f64 / elapsed
            } else {
                0.0
            };
            last_sample = (begin, completed);
            let inputs = ScaleInputs {
                queue_depth: queue_depth as usize,
                heartbeat_lag: lag_gauges.iter().map(|g| g.get()).fold(0.0, f64::max),
                tasks_per_sec,
                fetch_p99: tele.phase_summary(Phase::TaskFetch).p99,
                current_size: member_gauges.iter().map(|g| g.get()).sum::<f64>() as usize,
            };
            let (decision, desired) = {
                let mut r = shared.lock();
                let d = r.tick(begin, &inputs);
                (d, r.desired())
            };
            desired_gauge.set(desired as f64);
            queue_gauge.set(queue_depth as f64);

            if decision.acted() {
                let targets = split_target(desired as u64, shards);
                for &instance in &instances {
                    for (stx, &target) in links.shard_txs.iter().zip(&targets) {
                        let _ = stx.send(ShardMsg::Resize { instance, target });
                    }
                }
            }
            let end = wall_now(&links.start);
            match decision {
                ScaleDecision::ScaleUp { to, .. } => {
                    tele.instant(
                        end.as_micros(),
                        Phase::ProviderScaleUp,
                        CONTROL_TRACK,
                        to as u64,
                    );
                }
                ScaleDecision::ScaleDown { to, .. } => {
                    tele.instant(
                        end.as_micros(),
                        Phase::ProviderScaleDown,
                        CONTROL_TRACK,
                        to as u64,
                    );
                }
                ScaleDecision::Replace { .. } | ScaleDecision::Hold => {}
            }
            tele.span(
                begin.as_micros(),
                end.as_micros(),
                Phase::ProviderReconcile,
                CONTROL_TRACK,
                desired as u64,
            );
        }
    });
    (tx, thread)
}

// ---------------------------------------------------------------------
// Carousel thread
// ---------------------------------------------------------------------

fn carousel_main(
    rx: Receiver<CarouselMsg>,
    bus: Arc<BroadcastBus<BusMsg>>,
    hub: Arc<Mutex<Hub>>,
    start: Instant,
    tele: Telemetry,
) {
    let mut images: BTreeMap<InstanceId, Arc<AlignmentImage>> = BTreeMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            CarouselMsg::Register { instance, image } => {
                images.insert(instance, image);
            }
            CarouselMsg::Publish(signed) => {
                let (image, instance) = match signed.message {
                    ControlMessage::Wakeup(w) => {
                        *hub.lock().wakeups.entry(w.instance).or_insert(0) += 1;
                        (images.get(&w.instance).cloned(), w.instance)
                    }
                    ControlMessage::Reset(r) => {
                        images.remove(&r.instance);
                        (None, r.instance)
                    }
                };
                tele.instant(
                    wall_now(&start).as_micros(),
                    Phase::CarouselPublish,
                    CONTROL_TRACK,
                    instance.raw(),
                );
                bus.publish(&BusMsg::Control(LiveBroadcast { signed, image }));
            }
            CarouselMsg::Export { reply } => {
                let recipes = images
                    .iter()
                    .map(|(&instance, image)| (instance, ImageExport::from_image(image)))
                    .collect();
                let _ = reply.send(recipes);
            }
            CarouselMsg::Shutdown => return,
        }
    }
}

// ---------------------------------------------------------------------
// Controller shards
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn shard_main(
    index: usize,
    shards: usize,
    key: Vec<u8>,
    policy: ControllerPolicy,
    tick: std::time::Duration,
    rx: Receiver<ShardMsg>,
    carousel_tx: Sender<CarouselMsg>,
    hub: Arc<Mutex<Hub>>,
    start: Instant,
    tele: Telemetry,
) {
    // Disjoint message-id namespace: ids ≡ index (mod shards).
    let mut controller = Controller::with_id_namespace(&key, policy, index as u64, shards as u64);
    let lag_gauge = tele
        .registry()
        .gauge(&format!("controller.heartbeat_lag.shard{index}"));
    let members_gauge = tele
        .registry()
        .gauge(&format!("controller.members.shard{index}"));
    let mut last_tick = Instant::now();
    loop {
        match rx.recv_timeout(tick) {
            Ok(ShardMsg::Heartbeat { hb, reply }) => {
                let now = wall_now(&start);
                // Heartbeat lag: emission → consolidation, i.e. this
                // shard's backlog as seen by its nodes.
                lag_gauge.set(now.since(hb.sent_at).as_secs_f64());
                let outputs = controller.on_heartbeat(hb, now);
                let mut replies = apply_outputs(outputs, &carousel_tx, &hub, &start, &tele);
                let _ = reply.send(replies.pop().unwrap_or(HeartbeatReply::Ack));
            }
            Ok(ShardMsg::Admit { instance, request }) => {
                let outputs = controller.admit_instance(instance, request, wall_now(&start));
                apply_outputs(outputs, &carousel_tx, &hub, &start, &tele);
            }
            Ok(ShardMsg::Dismantle { instance, publish }) => {
                if let Ok(outputs) = controller.dismantle(instance) {
                    if publish {
                        // One carousel reset reaches every shard's nodes;
                        // the other shards just flip to Dismantled and trim
                        // their own stragglers via heartbeat replies.
                        apply_outputs(outputs, &carousel_tx, &hub, &start, &tele);
                    }
                }
            }
            Ok(ShardMsg::Resize { instance, target }) => {
                // Unknown or dismantled instances are fine to skip: the
                // reconciler races job completion by design.
                let _ = controller.resize(instance, target);
            }
            Ok(ShardMsg::Revoke { instance }) => {
                if let Ok(outputs) = controller.revoke_members(instance) {
                    // The evicted members' DirectResets have no in-flight
                    // heartbeat reply to ride, so they are telemetered and
                    // dropped here; NodeLost still re-queues every
                    // assignment, and the next tick's recomposition wakeup
                    // re-forms the membership.
                    apply_outputs(outputs, &carousel_tx, &hub, &start, &tele);
                }
            }
            Ok(ShardMsg::Export { reply }) => {
                let _ = reply.send(controller.export_state(wall_now(&start)));
            }
            Ok(ShardMsg::Import { state, reply }) => {
                controller.import_state(state, wall_now(&start));
                let _ = reply.send(());
            }
            Ok(ShardMsg::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        members_gauge.set(controller.total_members() as f64);
        if last_tick.elapsed() >= tick {
            last_tick = Instant::now();
            let outputs = controller.tick(wall_now(&start));
            apply_outputs(outputs, &carousel_tx, &hub, &start, &tele);
        }
    }
}

/// Executes a shard Controller's side effects: broadcasts go to the
/// carousel thread, `NodeLost` re-queues via the shared Backend, direct
/// resets become heartbeat replies (returned to the caller).
fn apply_outputs(
    outputs: Vec<ControllerOutput>,
    carousel_tx: &Sender<CarouselMsg>,
    hub: &Arc<Mutex<Hub>>,
    start: &Instant,
    tele: &Telemetry,
) -> Vec<HeartbeatReply> {
    let mut replies = Vec::new();
    for out in outputs {
        match out {
            ControllerOutput::Broadcast(signed) => {
                let _ = carousel_tx.send(CarouselMsg::Publish(signed));
            }
            ControllerOutput::DirectReset { node, instance } => {
                tele.instant(
                    wall_now(start).as_micros(),
                    Phase::DirectReset,
                    node.raw(),
                    instance.raw(),
                );
                replies.push(HeartbeatReply::Reset(instance));
            }
            ControllerOutput::NodeLost { node, .. } => {
                tele.instant(wall_now(start).as_micros(), Phase::NodeLost, node.raw(), 0);
                let _ = hub.lock().backend.node_lost(node);
            }
        }
    }
    replies
}

// ---------------------------------------------------------------------
// Dispatch workers
// ---------------------------------------------------------------------

fn dispatch_main(
    index: usize,
    rx: Receiver<DispatchMsg>,
    hub: Arc<Mutex<Hub>>,
    shard_txs: Vec<Sender<ShardMsg>>,
    injector: Arc<FaultInjector>,
    start: Instant,
    tele: Telemetry,
) {
    let depth_gauge = tele
        .registry()
        .gauge(&format!("dispatch.queue_depth.shard{index}"));
    let backend_depth = tele.registry().gauge("backend.queue_depth");
    while let Ok(msg) = rx.recv() {
        depth_gauge.set(rx.len() as f64);
        match msg {
            DispatchMsg::Request {
                instance,
                node,
                max,
                reply,
            } => {
                // Fault hook: a stalled Backend answers nothing; the
                // node's reply timeout fires and it retries with backoff.
                if injector.backend_stalled(wall_now(&start)).is_some() {
                    drop(reply);
                    continue;
                }
                let response = {
                    let mut hub = hub.lock();
                    fetch_batch_reply(&mut hub, instance, node, max)
                };
                let _ = reply.send(response);
            }
            DispatchMsg::Results { job, node, results } => {
                let dismantle = {
                    let mut hub = hub.lock();
                    let now = wall_now(&start);
                    for &(task, score) in &results {
                        let _ = hub.backend.complete_task(job, task, node, now);
                        hub.job_scores.entry(job).or_default().insert(task, score);
                    }
                    let depth: u64 = hub
                        .backend
                        .open_jobs()
                        .iter()
                        .map(|&j| hub.backend.pending_count(j))
                        .sum();
                    backend_depth.set(depth as f64);
                    if hub.backend.is_complete(job) {
                        finish_job(&mut hub, job, now, &tele)
                    } else {
                        None
                    }
                };
                // Locking rule: the hub guard is dropped before these sends.
                if let Some(instance) = dismantle {
                    for (i, tx) in shard_txs.iter().enumerate() {
                        let _ = tx.send(ShardMsg::Dismantle {
                            instance,
                            publish: i == 0,
                        });
                    }
                }
            }
            DispatchMsg::Shutdown => return,
        }
    }
}

/// Cuts a batch for `node` under the hub lock.
fn fetch_batch_reply(
    hub: &mut Hub,
    instance: InstanceId,
    node: NodeId,
    max: usize,
) -> TaskBatchReply {
    let Some(&job) = hub.instance_job.get(&instance) else {
        return TaskBatchReply::Drained;
    };
    let batch = match hub.backend.fetch_batch(job, node, max) {
        Ok(batch) if !batch.is_empty() => batch,
        _ => return TaskBatchReply::Drained,
    };
    let queries = &hub.job_queries[&job];
    let tasks = batch
        .into_iter()
        .map(|task| {
            let query = queries[task.id.index()].clone();
            (task, query)
        })
        .collect();
    TaskBatchReply::Assigned { job, tasks }
}

/// Completes the Provider request for a finished job and reports which
/// instance to dismantle. Runs under the hub lock; the caller sends the
/// per-shard dismantles after dropping it.
fn finish_job(hub: &mut Hub, job: JobId, now: SimTime, tele: &Telemetry) -> Option<InstanceId> {
    let req = hub.provider.request_for_job(job)?;
    let instance = *hub.job_instance.get(&job)?;
    let wakeups = hub.wakeups.get(&instance).copied().unwrap_or(0);
    let completed = hub.backend.completed_count(job);
    let requeues = hub.backend.requeue_count(job);
    hub.provider
        .complete(req, now, completed, requeues, wakeups)?;
    if let Some(report) = hub.provider.report(req) {
        let end = now.as_micros();
        tele.span(
            end.saturating_sub(report.makespan.as_micros()),
            end,
            Phase::JobRun,
            CONTROL_TRACK,
            job.raw(),
        );
    }
    Some(instance)
}
