//! The live "application image": a real sequence-alignment workload.
//!
//! In the paper the carousel carries an opaque binary (BLAST). In the live
//! runtime the image is an [`AlignmentImage`]: a recipe from which every
//! node deterministically materializes the same reference database and
//! then serves alignment queries against it — genuine CPU work with the
//! same scan-and-score shape as BLAST.

use oddci_core::messages::SignedMessage;
use oddci_workload::alignment::{random_sequence, BlastSearch, Scoring};
use std::sync::Arc;

/// Recipe for the workload a wakeup distributes.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentImage {
    /// Seed from which every node regenerates the same database.
    pub db_seed: u64,
    /// Database length in bases.
    pub db_len: usize,
    /// Seed word length for the index.
    pub k: usize,
    /// Alignment scoring.
    pub scoring: Scoring,
    /// Window for seed extension.
    pub window: usize,
    /// Minimum reported score.
    pub min_score: i32,
    /// Database bytes that arrived with the image instead of being
    /// regenerated — the socket transport ships the materialized database
    /// inside the wakeup broadcast, so a remote PNA boots from the
    /// streamed bytes rather than from `db_seed`. `None` (the in-process
    /// default) regenerates deterministically.
    pub prefetched: Option<Arc<Vec<u8>>>,
}

impl AlignmentImage {
    /// A small demo image: quick to materialize, still does real work.
    pub fn small_demo() -> Self {
        AlignmentImage {
            db_seed: 0xB10_5EED,
            db_len: 50_000,
            k: 11,
            scoring: Scoring::default(),
            window: 64,
            min_score: 14,
            prefetched: None,
        }
    }

    /// Materializes the executable form: generates the database (or
    /// adopts the prefetched copy that streamed in with the wakeup) and
    /// builds the k-mer index (the live equivalent of "loading the image
    /// into the DVE" — it costs real CPU time).
    pub fn materialize(&self) -> BlastSearch {
        let db = match &self.prefetched {
            Some(bytes) => bytes.as_ref().clone(),
            None => random_sequence(self.db_len, self.db_seed),
        };
        BlastSearch::index(db, self.k, self.scoring)
    }

    /// Best alignment score of `query` against the materialized database.
    pub fn score(&self, db: &BlastSearch, query: &[u8]) -> i32 {
        db.search(query, self.window, self.min_score)
            .first()
            .map_or(0, |hit| hit.score)
    }
}

/// What rides the live broadcast bus: the signed control message plus, for
/// wakeups, the image recipe (shared, not copied, across subscribers).
#[derive(Debug, Clone)]
pub struct LiveBroadcast {
    /// The authenticated control message.
    pub signed: SignedMessage,
    /// The image for wakeup messages (`None` for resets).
    pub image: Option<Arc<AlignmentImage>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use oddci_workload::alignment::mutate;

    #[test]
    fn materialization_is_deterministic() {
        let img = AlignmentImage::small_demo();
        let a = img.materialize();
        let b = img.materialize();
        assert_eq!(a.db(), b.db(), "every node builds the identical database");
    }

    #[test]
    fn scores_planted_queries_higher_than_noise() {
        let img = AlignmentImage::small_demo();
        let db = img.materialize();
        // A query cut from the database scores high...
        let planted = mutate(&db.db()[1000..1200], 0.03, 1);
        let hit_score = img.score(&db, &planted);
        // ...an unrelated random query scores near zero.
        let noise = random_sequence(200, 999);
        let noise_score = img.score(&db, &noise);
        assert!(
            hit_score > noise_score + 50,
            "planted={hit_score} noise={noise_score}"
        );
    }

    #[test]
    fn prefetched_database_bytes_are_adopted() {
        let mut img = AlignmentImage::small_demo();
        let shipped = random_sequence(1000, 77);
        img.prefetched = Some(Arc::new(shipped.clone()));
        assert_eq!(
            img.materialize().db().to_vec(),
            shipped,
            "a shipped database wins over regeneration"
        );
    }

    #[test]
    fn different_seeds_different_databases() {
        let a = AlignmentImage {
            db_seed: 1,
            ..AlignmentImage::small_demo()
        };
        let b = AlignmentImage {
            db_seed: 2,
            ..AlignmentImage::small_demo()
        };
        assert_ne!(a.materialize().db(), b.materialize().db());
    }
}
