//! Experiment X1 (extension) — churn resilience: instance size stability,
//! recomposition traffic and makespan inflation under viewer churn.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin churn
//! ```

use oddci_bench::{fmt_secs, header, write_artifact, write_metrics, RunInfo};
use oddci_core::world::ChurnConfig;
use oddci_core::{World, WorldConfig};
use oddci_telemetry::{HistogramSummary, Telemetry};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    label: String,
    availability: f64,
    makespan_s: Option<f64>,
    inflation: Option<f64>,
    requeues: u64,
    orphans: u64,
    wakeup_broadcasts: u32,
}

fn main() {
    header("X1 — churn resilience (600 tasks x 120 s, 100-node instance, 500 receivers)");
    println!();

    let scenarios: Vec<(String, Option<(u64, u64)>)> = vec![
        ("no churn".into(), None),
        ("on 240m / off 15m".into(), Some((240, 15))),
        ("on 120m / off 20m".into(), Some((120, 20))),
        ("on 60m / off 20m".into(), Some((60, 20))),
        ("on 30m / off 15m".into(), Some((30, 15))),
        ("on 15m / off 10m".into(), Some((15, 10))),
    ];

    // Independent replications in parallel (rayon) — each is a full
    // deterministic world.
    type RunOutput = (
        Row,
        oddci_core::world::MetricsSnapshot,
        Vec<(&'static str, HistogramSummary)>,
    );
    let results: Vec<RunOutput> = scenarios
        .par_iter()
        .map(|(label, churn)| {
            let tele = Telemetry::disabled();
            let mut cfg = WorldConfig {
                nodes: 500,
                controller_tick: SimDuration::from_secs(30),
                churn: churn.map(|(on, off)| ChurnConfig {
                    mean_on: SimDuration::from_mins(on),
                    mean_off: SimDuration::from_mins(off),
                }),
                telemetry: tele.clone(),
                ..Default::default()
            };
            cfg.policy.heartbeat.interval = SimDuration::from_secs(30);
            let availability = churn.map_or(1.0, |(on, off)| on as f64 / (on + off) as f64);

            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(2),
                DataSize::from_bytes(500),
                DataSize::from_bytes(500),
                SimDuration::from_secs(120),
                17,
            )
            .generate(600);

            let mut sim = World::simulation(cfg, 2024);
            let request = sim.submit_job(job, 100);
            let report = sim.run_request(request, SimTime::from_secs(60 * 24 * 3600));
            let m = sim.world().metrics();
            let row = Row {
                label: label.clone(),
                availability,
                makespan_s: report.map(|r| r.makespan.as_secs_f64()),
                inflation: None,
                requeues: report.map_or(0, |r| r.requeues),
                orphans: m.tasks_orphaned.get(),
                wakeup_broadcasts: report.map_or(0, |r| r.wakeup_broadcasts),
            };
            let snapshot = m.snapshot();
            (row, snapshot, tele.phase_breakdown())
        })
        .collect();

    let baseline = results[0].0.makespan_s.expect("no-churn run completes");
    let heaviest_run = results.last().expect("non-empty sweep");
    let heaviest_snapshot = heaviest_run.1.clone();
    let heaviest_phases = heaviest_run.2.clone();
    let mut rows = Vec::new();
    println!(
        "{:<20} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "scenario", "avail", "makespan", "inflation", "requeues", "orphans", "wakeups"
    );
    for (mut r, _, _) in results {
        r.inflation = r.makespan_s.map(|m| m / baseline);
        println!(
            "{:<20} {:>6.0}% {:>12} {:>9}x {:>9} {:>9} {:>9}",
            r.label,
            r.availability * 100.0,
            r.makespan_s.map_or("DNF".into(), fmt_secs),
            r.inflation.map_or("—".into(), |x| format!("{x:.2}")),
            r.requeues,
            r.orphans,
            r.wakeup_broadcasts
        );
        rows.push(r);
    }

    // Shape checks: every scenario completes; churn monotonically costs
    // recomposition traffic.
    assert!(
        rows.iter().all(|r| r.makespan_s.is_some()),
        "all scenarios complete"
    );
    let heaviest = rows.last().unwrap();
    assert!(heaviest.requeues > 0 && heaviest.wakeup_broadcasts > 1);
    println!();
    println!("every scenario completes; churn is paid for in re-queued tasks and");
    println!("recomposition wakeups, exactly as §3.2's design anticipates.");

    // Per-phase latency breakdown of the heaviest-churn run.
    println!();
    println!("per-phase latencies under {}:", rows.last().unwrap().label);
    println!(
        "{:>16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (label, s) in &heaviest_phases {
        println!(
            "{:>16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            label,
            s.count,
            fmt_secs(s.mean),
            fmt_secs(s.p50),
            fmt_secs(s.p90),
            fmt_secs(s.p99),
            fmt_secs(s.max)
        );
    }

    write_artifact("churn", &rows);
    write_metrics(
        "churn",
        &RunInfo::new("churn", 2024),
        &heaviest_snapshot,
        &heaviest_phases,
    );
}
