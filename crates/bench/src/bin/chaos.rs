//! Experiment X7 — chaos: fault-intensity sweep over the standard fault
//! mix, measuring what injected carousel, channel, heartbeat, PNA and
//! Backend faults cost the control plane in makespan, retries and
//! re-queued tasks — and verifying that **every** task is still accounted
//! for at every intensity.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin chaos
//! ```

use oddci_bench::{fmt_secs, header, write_artifact, write_metrics, RunInfo};
use oddci_core::{World, WorldConfig};
use oddci_faults::FaultPlan;
use oddci_telemetry::{HistogramSummary, Telemetry};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use rayon::prelude::*;
use serde::Serialize;

const TASKS: u64 = 300;

#[derive(Serialize)]
struct Row {
    intensity: f64,
    makespan_s: Option<f64>,
    inflation: Option<f64>,
    tasks_completed: u64,
    requeues: u64,
    fetch_retries: u64,
    fetch_aborts: u64,
    faults_injected: u64,
}

type RunOutput = (
    Row,
    oddci_core::world::MetricsSnapshot,
    Vec<(&'static str, HistogramSummary)>,
);

fn run_at(intensity: f64) -> RunOutput {
    let tele = Telemetry::disabled();
    let mut cfg = WorldConfig {
        nodes: 500,
        controller_tick: SimDuration::from_secs(30),
        faults: FaultPlan::standard_mix().scaled(intensity),
        telemetry: tele.clone(),
        ..Default::default()
    };
    cfg.policy.heartbeat.interval = SimDuration::from_secs(30);

    let job = JobGenerator::homogeneous(
        DataSize::from_megabytes(2),
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs(60),
        23,
    )
    .generate(TASKS);

    let mut sim = World::simulation(cfg, 2024);
    let request = sim.submit_job(job, 100);
    let report = sim.run_request(request, SimTime::from_secs(60 * 24 * 3600));
    let snapshot = sim.world().metrics().snapshot();
    let row = Row {
        intensity,
        makespan_s: report.map(|r| r.makespan.as_secs_f64()),
        inflation: None,
        tasks_completed: report.map_or(0, |r| r.tasks_completed),
        requeues: snapshot.requeues,
        fetch_retries: snapshot.task_fetch_retries,
        fetch_aborts: snapshot.fetch_aborts,
        faults_injected: snapshot.faults.total(),
    };
    let phases = tele.phase_breakdown();
    (row, snapshot, phases)
}

fn main() {
    header("X7 — chaos (300 tasks x 60 s, 100-node instance, 500 receivers, standard mix)");
    println!();

    let intensities = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0];
    let results: Vec<RunOutput> = intensities.par_iter().map(|&f| run_at(f)).collect();

    let baseline = results[0].0.makespan_s.expect("calm run completes");
    let heaviest = results.last().expect("non-empty sweep");
    let heaviest_snapshot = heaviest.1.clone();
    let heaviest_phases = heaviest.2.clone();
    let mut rows = Vec::new();
    println!(
        "{:>9} {:>12} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "intensity", "makespan", "inflation", "tasks", "requeues", "retries", "aborts", "faults"
    );
    for (mut r, _, _) in results {
        r.inflation = r.makespan_s.map(|m| m / baseline);
        println!(
            "{:>8.2}x {:>12} {:>9}x {:>5}/{TASKS} {:>9} {:>9} {:>8} {:>8}",
            r.intensity,
            r.makespan_s.map_or("DNF".into(), fmt_secs),
            r.inflation.map_or("—".into(), |x| format!("{x:.2}")),
            r.tasks_completed,
            r.requeues,
            r.fetch_retries,
            r.fetch_aborts,
            r.faults_injected
        );
        rows.push(r);
    }

    // Shape checks: no intensity loses work or wedges the control plane.
    assert!(
        rows.iter().all(|r| r.tasks_completed == TASKS),
        "every task accounted for at every intensity"
    );
    assert_eq!(rows[0].faults_injected, 0, "intensity 0 injects nothing");
    assert!(
        rows.last().unwrap().faults_injected > rows[1].faults_injected,
        "fault volume grows with intensity"
    );
    assert!(
        rows.last().unwrap().requeues + rows.last().unwrap().fetch_retries > 0,
        "the retry/requeue machinery actually engaged"
    );
    println!();
    println!("all {TASKS} tasks complete at every intensity: faults are paid for in");
    println!("retries, re-queues and makespan — never in lost work.");

    // Per-phase latency breakdown of the heaviest run: where the injected
    // faults actually land on the task lifecycle.
    println!();
    println!(
        "per-phase latencies at intensity {:.2}x:",
        intensities.last().unwrap()
    );
    println!(
        "{:>16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p90", "p99", "max"
    );
    for (label, s) in &heaviest_phases {
        println!(
            "{:>16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            label,
            s.count,
            fmt_secs(s.mean),
            fmt_secs(s.p50),
            fmt_secs(s.p90),
            fmt_secs(s.p99),
            fmt_secs(s.max)
        );
    }

    write_artifact("chaos", &rows);
    // Full counter set of the heaviest run, for diffing across revisions.
    write_metrics(
        "chaos",
        &RunInfo::new("chaos", 2024),
        &heaviest_snapshot,
        &heaviest_phases,
    );
}
