//! X13 — elastic Provider: desired-state tracking of a diurnal load.
//!
//! One live sharded headend with the autoscale reconciler on, fed a
//! sine-wave job arrival curve (two "days" of load compressed into a few
//! seconds): each step submits a wave of alignment queries sized by the
//! diurnal curve, and the bench samples the reconciler's desired size,
//! the Backend queue depth and the action counters after every step. A
//! spot-like `airtime-revoked` window lands mid-run so the artifact also
//! records a replacement cycle.
//!
//! Shape checks: the instance must scale up at the first peak, scale
//! back down toward the floor in the troughs, complete every submitted
//! task, and leak nothing at shutdown.
//!
//! Artifacts: `results/autoscale.json` plus a schema-conformant
//! `results/autoscale.metrics.json` envelope.

use oddci_bench::{header, write_artifact, write_metrics, RunInfo};
use oddci_core::AutoscalePolicy;
use oddci_faults::FaultPlan;
use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci_telemetry::HistogramSummary;
use oddci_types::SimDuration;
use oddci_workload::alignment::random_sequence;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 13;
/// Live node threads available to the instance (the reconciler's ceiling).
const NODES: u64 = 8;
/// Steps per simulated day.
const STEPS_PER_DAY: usize = 8;
/// Simulated days of load.
const DAYS: usize = 2;
/// Queries submitted at the diurnal peak; troughs submit none.
const PEAK_QUERIES: usize = 24;
/// Wall-clock length of one diurnal step. Longer than the cooldown, so
/// the reconciler is free to act at least once per step.
const STEP_MS: u64 = 350;

/// One sampled step of the diurnal sweep.
#[derive(Debug, Clone, Serialize)]
struct StepRow {
    step: usize,
    /// Queries submitted this step (the offered load).
    offered: usize,
    /// Backend queue depth at the end-of-step sample.
    queue_depth: f64,
    /// Reconciler's desired size at the end-of-step sample.
    desired: usize,
    /// Cumulative action counters at the sample.
    scale_ups: u64,
    scale_downs: u64,
    replacements: u64,
}

/// Offered load for `step`: a sine-wave "diurnal" curve from 0 at the
/// trough to [`PEAK_QUERIES`] at the peak.
fn diurnal_load(step: usize) -> usize {
    let phase = 2.0 * std::f64::consts::PI * (step as f64) / (STEPS_PER_DAY as f64);
    // sin is in [-1, 1]; shift to [0, 1] and scale. Step 2 of 8 is the
    // daily peak, step 6 the trough.
    let level = (1.0 + phase.sin()) / 2.0;
    (level * PEAK_QUERIES as f64).round() as usize
}

/// Percentile summary over a small sample, for the metrics envelope.
fn summarize(samples: &[f64]) -> HistogramSummary {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
        }
    };
    HistogramSummary {
        count: sorted.len() as u64,
        mean: if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        },
        p50: pick(0.5),
        p90: pick(0.9),
        p99: pick(0.99),
        max: sorted.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    header("X13 — elastic Provider under a diurnal load curve");

    let policy = AutoscalePolicy {
        min_size: 1,
        max_size: NODES as usize,
        slo_queue_depth: 4,
        cooldown: SimDuration::from_millis(200),
        ..AutoscalePolicy::default()
    };
    let live = LiveOddci::start(LiveConfig {
        nodes: NODES,
        seed: SEED,
        heartbeat_interval: Duration::from_millis(60),
        controller_tick: Duration::from_millis(80),
        // One spot-like revocation window mid-run (during the second
        // day's morning ramp, when a job is reliably open).
        faults: FaultPlan::parse("airtime-revoked=1.0@3.0..3.3").expect("valid plan"),
        mode: HeadendMode::Sharded {
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        autoscale: Some(policy),
        autoscale_interval: Duration::from_millis(25),
        ..Default::default()
    });
    let image = AlignmentImage {
        db_len: 150_000,
        ..AlignmentImage::small_demo()
    };
    let queue_gauge = live.telemetry().registry().gauge("backend.queue_depth");

    println!(
        "\nDiurnal sweep ({DAYS} days x {STEPS_PER_DAY} steps, peak {PEAK_QUERIES} queries, \
         {NODES} nodes, slo {}):",
        policy.slo_queue_depth
    );
    println!(
        "  {:>4} {:>8} {:>7} {:>8} {:>5} {:>7} {:>9}",
        "step", "offered", "queue", "desired", "ups", "downs", "replaces"
    );

    let mut reqs = Vec::new();
    let mut offered_total = 0usize;
    let mut steps = Vec::new();
    for step in 0..DAYS * STEPS_PER_DAY {
        let offered = diurnal_load(step);
        if offered > 0 {
            let queries: Vec<Arc<Vec<u8>>> = (0..offered as u64)
                .map(|i| Arc::new(random_sequence(96, SEED ^ ((step as u64) << 16) ^ i)))
                .collect();
            let req = live
                .submit_query_job(image.clone(), queries, policy.min_size as u64)
                .expect("headend accepts the wave");
            reqs.push(req);
            offered_total += offered;
        }
        std::thread::sleep(Duration::from_millis(STEP_MS));
        let export = live.autoscale_state().expect("reconciler is on");
        let row = StepRow {
            step,
            offered,
            queue_depth: queue_gauge.get(),
            desired: export.desired,
            scale_ups: export.scale_ups,
            scale_downs: export.scale_downs,
            replacements: export.replacements,
        };
        println!(
            "  {:>4} {:>8} {:>7.0} {:>8} {:>5} {:>7} {:>9}",
            row.step,
            row.offered,
            row.queue_depth,
            row.desired,
            row.scale_ups,
            row.scale_downs,
            row.replacements
        );
        steps.push(row);
    }

    // Drain: every wave must complete, then the empty queue must pull
    // the desired size back to the floor.
    let mut tasks_completed = 0usize;
    let mut requeues = 0u64;
    for req in reqs {
        let outcome = live
            .wait_job(req, Duration::from_secs(120))
            .expect("every wave completes");
        tasks_completed += outcome.scores.len();
        requeues += outcome.report.requeues;
    }
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    let export = loop {
        let export = live.autoscale_state().expect("reconciler is on");
        if export.desired == policy.min_size || Instant::now() >= drain_deadline {
            break export;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let revocations = live
        .telemetry()
        .registry()
        .counter("faults.airtime_revoked")
        .get();
    let report = live.shutdown();

    println!(
        "\n  offered {offered_total}, completed {tasks_completed}, requeues {requeues}, \
         revocations {revocations}"
    );
    println!(
        "  actions: {} up / {} down / {} replace, final desired {}",
        export.scale_ups, export.scale_downs, export.replacements, export.desired
    );

    // Shape checks: the instance was actually elastic and lossless.
    assert_eq!(
        tasks_completed, offered_total,
        "every offered task completes"
    );
    assert!(export.scale_ups >= 1, "the morning ramp must scale up");
    assert!(export.scale_downs >= 1, "the trough must scale down");
    assert_eq!(
        export.desired, policy.min_size,
        "a drained queue settles at the floor"
    );
    assert_eq!(report.tasks_unaccounted, 0, "accounting must balance");
    assert_eq!(report.threads_failed, 0, "no thread may panic");

    let desired_curve: Vec<f64> = steps.iter().map(|r| r.desired as f64).collect();
    let queue_curve: Vec<f64> = steps.iter().map(|r| r.queue_depth).collect();
    write_artifact(
        "autoscale",
        &serde_json::json!({
            "policy": policy,
            "nodes": NODES,
            "steps": steps,
            "offered_total": offered_total,
            "tasks_completed": tasks_completed,
            "requeues": requeues,
            "revocations": revocations,
            "scale_ups": export.scale_ups,
            "scale_downs": export.scale_downs,
            "replacements": export.replacements,
            "final_desired": export.desired,
        }),
    );
    let run = RunInfo::new("autoscale", SEED);
    let metrics = serde_json::json!({
        "wakeup_latency": {"count": 0, "mean": 0.0, "std_dev": 0.0, "min": 0.0, "max": 0.0},
        "joins": 0,
        "tasks_completed": tasks_completed,
        "control_deliveries": 0,
        "heartbeats_delivered": 0,
        "direct_resets": 0,
        "tasks_orphaned": offered_total - tasks_completed,
        "requeues": requeues,
        "task_fetch_retries": 0,
        "fetch_aborts": 0,
        "faults": {"airtime_revoked": revocations},
        "autoscale": {
            "scale_ups": export.scale_ups,
            "scale_downs": export.scale_downs,
            "replacements": export.replacements,
            "ticks": export.ticks,
        },
    });
    let phases = [
        ("provider.desired_size", summarize(&desired_curve)),
        ("backend.queue_depth", summarize(&queue_curve)),
    ];
    write_metrics("autoscale", &run, &metrics, &phases);
}
