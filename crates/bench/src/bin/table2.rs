//! Experiment T2 — Table II: BLASTALL runtimes on the set-top box (in use
//! and standby) vs the reference PC, paper vs calibrated model.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin table2
//! ```

use oddci_bench::{header, write_artifact};
use oddci_receiver::compute::{ComputeModel, DeviceClass, UsageMode};
use oddci_workload::blast::{mean_in_use_penalty, TABLE2_EXPERIMENTS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    test: u32,
    paper_in_use_s: f64,
    paper_standby_s: f64,
    pc_s: f64,
    model_in_use_s: f64,
    model_standby_s: f64,
    in_use_err_pct: f64,
    standby_err_pct: f64,
}

fn main() {
    header("Table II — BLASTALL on STB (in use / standby) vs reference PC");
    println!();
    println!(
        "{:>5} {:>14} {:>14} {:>11} | {:>14} {:>14} {:>9} {:>9}",
        "#",
        "paper in-use",
        "paper standby",
        "PC (rec.)",
        "model in-use",
        "model standby",
        "err(iu)%",
        "err(sb)%"
    );

    let model = ComputeModel::paper();
    let mut rows = Vec::new();
    for e in TABLE2_EXPERIMENTS {
        let model_in_use = model
            .from_pc_time(e.pc(), DeviceClass::SetTopBox, UsageMode::InUse)
            .as_secs_f64();
        let model_standby = model
            .from_pc_time(e.pc(), DeviceClass::SetTopBox, UsageMode::Standby)
            .as_secs_f64();
        let err_iu = 100.0 * (model_in_use - e.stb_in_use_secs) / e.stb_in_use_secs;
        let err_sb = 100.0 * (model_standby - e.stb_standby_secs) / e.stb_standby_secs;
        println!(
            "{:>5} {:>13.3}s {:>13.3}s {:>10.3}s | {:>13.3}s {:>13.3}s {:>+8.1}% {:>+8.1}%",
            e.test,
            e.stb_in_use_secs,
            e.stb_standby_secs,
            e.pc_secs,
            model_in_use,
            model_standby,
            err_iu,
            err_sb
        );
        rows.push(Row {
            test: e.test,
            paper_in_use_s: e.stb_in_use_secs,
            paper_standby_s: e.stb_standby_secs,
            pc_s: e.pc_secs,
            model_in_use_s: model_in_use,
            model_standby_s: model_standby,
            in_use_err_pct: err_iu,
            standby_err_pct: err_sb,
        });
    }

    println!();
    let mean_penalty = mean_in_use_penalty();
    println!("paper aggregate:  STB/PC = 20.6x (±10%),  in-use/standby = 1.65x (±17%)");
    println!(
        "dataset aggregate: in-use/standby = {:.2}x (per-row spread is the paper's ±17%)",
        mean_penalty
    );
    println!();
    println!("per-row standby error reflects real per-workload variance the single");
    println!("1.65x constant cannot capture — the same spread the paper reports as");
    println!("its confidence interval. PC column is reconstructed (in_use/20.6);");
    println!("see EXPERIMENTS.md for provenance.");

    // The aggregate must stay within the paper's stated confidence bounds.
    assert!((mean_penalty - 1.65).abs() / 1.65 < 0.17);
    write_artifact("table2", &rows);
}
