//! Experiment X5 (extension) — multi-channel federation scaling (§4.3's
//! "multiple channels" remark made quantitative).
//!
//! ```text
//! cargo run --release -p oddci-bench --bin federation
//! ```

use oddci_bench::{fmt_secs, header, write_artifact};
use oddci_core::{Federation, WorldConfig};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    channels: usize,
    audience: u64,
    instance_total: u64,
    makespan_s: f64,
    speedup_vs_one: f64,
    efficiency_of_scaling: f64,
}

fn main() {
    header("X5 — federation scaling: same 6,000-task job across 1..8 channels");
    println!();

    let channel_counts = [1usize, 2, 4, 8];
    let results: Vec<(usize, u64, u64, f64)> = channel_counts
        .par_iter()
        .map(|&n| {
            let configs: Vec<WorldConfig> = (0..n)
                .map(|_| WorldConfig {
                    nodes: 500,
                    ..Default::default()
                })
                .collect();
            let mut fed = Federation::new(configs, 404);
            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(2),
                DataSize::from_bytes(500),
                DataSize::from_bytes(500),
                SimDuration::from_secs(60),
                8,
            )
            .generate(6_000);
            let target = 100 * n as u64;
            fed.submit_job(job, target);
            let report = fed
                .run(SimTime::from_secs(60 * 24 * 3600))
                .expect("completes");
            assert_eq!(report.tasks_completed, 6_000);
            (n, fed.total_audience(), target, report.makespan_secs)
        })
        .collect();

    let base = results[0].3;
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>9} {:>12}",
        "channels", "audience", "instance", "makespan", "speedup", "scaling eff."
    );
    let mut rows = Vec::new();
    for (n, audience, instance, makespan) in results {
        let speedup = base / makespan;
        let eff = speedup / n as f64;
        println!(
            "{:<10} {:>10} {:>10} {:>12} {:>8.2}x {:>11.0}%",
            n,
            audience,
            instance,
            fmt_secs(makespan),
            speedup,
            eff * 100.0
        );
        rows.push(Row {
            channels: n,
            audience,
            instance_total: instance,
            makespan_s: makespan,
            speedup_vs_one: speedup,
            efficiency_of_scaling: eff,
        });
    }

    // Shape checks: speedup grows with channels and stays reasonably
    // efficient (the wakeup overhead is paid once per channel, in parallel).
    assert!(rows
        .windows(2)
        .all(|w| w[1].speedup_vs_one > w[0].speedup_vs_one));
    assert!(rows.last().unwrap().efficiency_of_scaling > 0.6);
    println!();
    println!("federation scales the audience ceiling linearly; scaling efficiency");
    println!("stays high because every channel pays its (identical) wakeup cost");
    println!("concurrently — broadcast's defining advantage.");

    write_artifact("federation", &rows);
}
