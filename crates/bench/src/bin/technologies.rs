//! Experiment X6 (extension) — §3.3's enabling technologies compared: the
//! same job swept across terrestrial/satellite/cable DTV, IPTV multicast
//! and mobile broadcast.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin technologies
//! ```

use oddci_analytics::wakeup_mean;
use oddci_bench::{fmt_secs, header, write_artifact};
use oddci_core::{BroadcastTechnology, World};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technology: String,
    beta_mbps: f64,
    delta_kbps: f64,
    churned: bool,
    wakeup_model_s: f64,
    makespan_s: f64,
    requeues: u64,
    mean_node_wakeup_s: f64,
}

fn main() {
    header("X6 — the same campaign on every §3.3 broadcast modality");
    println!("1,000-device audience, 200-node instance, 1,000 x 60 s tasks, 4 MB image");
    println!();

    let image = DataSize::from_megabytes(4);
    let rows: Vec<Row> = BroadcastTechnology::ALL
        .par_iter()
        .map(|&tech| {
            let mut cfg = tech.world_config(1_000);
            cfg.policy.heartbeat.interval = SimDuration::from_secs(30);
            cfg.controller_tick = SimDuration::from_secs(30);
            let job = JobGenerator::homogeneous(
                image,
                DataSize::from_bytes(500),
                DataSize::from_bytes(500),
                SimDuration::from_secs(60),
                12,
            )
            .generate(1_000);
            let mut sim = World::simulation(cfg, 333);
            let request = sim.submit_job(job, 200);
            let report = sim
                .run_request(request, SimTime::from_secs(60 * 24 * 3600))
                .expect("completes");
            let m = sim.world().metrics();
            Row {
                technology: tech.label().to_string(),
                beta_mbps: tech.beta().bps() / 1e6,
                delta_kbps: tech.delta().bps() / 1e3,
                churned: tech.churn().is_some(),
                wakeup_model_s: wakeup_mean(image, tech.beta()).as_secs_f64(),
                makespan_s: report.makespan.as_secs_f64(),
                requeues: report.requeues,
                mean_node_wakeup_s: m.wakeup_latency.stats().mean(),
            }
        })
        .collect();

    println!(
        "{:<18} {:>7} {:>8} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "technology",
        "β Mbps",
        "δ Kbps",
        "churn",
        "wakeup(mdl)",
        "wakeup(sim)",
        "makespan",
        "requeues"
    );
    for r in &rows {
        println!(
            "{:<18} {:>7.2} {:>8.0} {:>6} {:>12} {:>12} {:>12} {:>9}",
            r.technology,
            r.beta_mbps,
            r.delta_kbps,
            if r.churned { "yes" } else { "no" },
            fmt_secs(r.wakeup_model_s),
            fmt_secs(r.mean_node_wakeup_s),
            fmt_secs(r.makespan_s),
            r.requeues,
        );
    }

    // Shape checks: every modality completes the job; wakeup ordering
    // follows β; the thin mobile pipes are the slow end.
    let find = |name: &str| rows.iter().find(|r| r.technology.contains(name)).unwrap();
    assert!(find("IPTV").wakeup_model_s < find("Terrestrial").wakeup_model_s);
    assert!(find("Terrestrial").wakeup_model_s < find("Mobile").wakeup_model_s);
    assert!(find("Mobile").makespan_s >= find("Cable").makespan_s);
    println!();
    println!("every modality completes the campaign; pipe widths order the wakeup");
    println!("costs exactly as §3.3's qualitative discussion suggests, and mobile's");
    println!("churn+slow CPUs make it the costliest substrate.");

    write_artifact("technologies", &rows);
}
