//! X12 — headend durability: the recovery-time curve.
//!
//! Two measurements, one artifact:
//!
//! * **Synthetic scaling.** Encode/decode cost and container size of an
//!   `OSNP` snapshot as instance membership grows (10k / 100k / 1M
//!   nodes). Decode time is the floor on how fast a standby can adopt a
//!   fleet-scale headend — everything else in adoption is O(running
//!   jobs), not O(members).
//! * **Live ground truth.** Real failovers over loopback TCP across a
//!   sweep of snapshot intervals: a socket headend snapshots while three
//!   reconnecting PNAs chew on an alignment job, dies the way SIGKILL
//!   would (`crash()` drops the listener with no goodbye), and a standby
//!   adopts the latest snapshot on the same port. Measured: snapshot age
//!   at the instant of the crash (the replay window the interval buys)
//!   and time from crash to a serving standby. Zero task loss asserted.
//!
//! Artifacts: `results/failover.json` plus a schema-conformant
//! `results/failover.metrics.json` envelope.

use oddci_bench::{header, write_artifact, write_metrics, RunInfo};
use oddci_core::backend::BackendState;
use oddci_core::controller::{ControllerState, InstanceExport, NodeExport};
use oddci_core::provider::{ProviderState, RequestExport, RequestState};
use oddci_core::{
    InstanceRequest, InstanceStatus, NodeRequirements, PnaStateKind, ProviderRequest,
};
use oddci_live::snapshot::{decode, encode, ImageExport};
use oddci_live::{
    run_wire_pna, AlignmentImage, HeadendMode, LiveConfig, LiveOddci, SnapshotState, WirePnaConfig,
    SNAPSHOT_FILE,
};
use oddci_telemetry::HistogramSummary;
use oddci_types::{DataSize, ImageId, InstanceId, JobId, NodeId, SimDuration, TaskId};
use oddci_workload::alignment::random_sequence;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 12;
/// Best-of repetitions for the synthetic encode/decode timings.
const REPS: usize = 3;
/// Membership sizes for the synthetic snapshots.
const MEMBERSHIPS: [u64; 3] = [10_000, 100_000, 1_000_000];
/// Snapshot cadences for the live failover sweep.
const INTERVALS_MS: [u64; 4] = [25, 50, 100, 200];
/// PNA processes (threads here) per live run.
const PNAS: u64 = 3;
/// Queries per live job — enough work that the crash lands mid-job.
const QUERIES: usize = 64;

/// One row of the synthetic scaling table.
#[derive(Debug, Clone, Serialize)]
struct SyntheticRow {
    nodes: u64,
    snapshot_bytes: usize,
    encode_secs: f64,
    decode_secs: f64,
}

/// One row of the live failover sweep.
#[derive(Debug, Clone, Serialize)]
struct LiveRow {
    snapshot_interval_ms: u64,
    snapshot_bytes: u64,
    snapshot_age_at_crash_secs: f64,
    adopt_secs: f64,
    standby_epoch: u64,
    tasks_completed: usize,
    tasks_lost: usize,
    requeues: u64,
    pnas_reacked: u64,
}

/// A snapshot the size a fleet-scale headend would cut: one active
/// instance at `nodes` members, a full heartbeat registry, and the wire
/// plane's identity ledger. Job payloads are held constant — the point
/// is how membership scales, and jobs are measured by the live sweep.
fn synthetic_snapshot(nodes: u64) -> SnapshotState {
    const SHARDS: u64 = 2;
    let request = InstanceRequest {
        image: ImageId::new(1),
        image_size: DataSize(50_000),
        target: nodes,
        requirements: NodeRequirements::default(),
    };
    let shards = (0..SHARDS)
        .map(|s| {
            let members: Vec<NodeId> = (s..nodes)
                .step_by(SHARDS as usize)
                .map(NodeId::new)
                .collect();
            let registry = members
                .iter()
                .map(|&node| NodeExport {
                    node,
                    heartbeat_age: SimDuration::from_secs_f64(0.05),
                    state: PnaStateKind::Busy,
                    instance: Some(InstanceId::new(0)),
                })
                .collect();
            ControllerState {
                instances: vec![InstanceExport {
                    id: InstanceId::new(0),
                    request,
                    status: InstanceStatus::Active,
                    members,
                    wakeups_sent: 1,
                }],
                registry,
                next_instance: 1,
                next_message: s,
                message_stride: SHARDS,
                heartbeats_received: nodes.saturating_mul(10),
            }
        })
        .collect();
    SnapshotState {
        epoch: 0,
        taken_at_us: 1_000_000,
        shards,
        backend: BackendState { jobs: Vec::new() },
        provider: ProviderState {
            requests: vec![RequestExport {
                request: ProviderRequest(0),
                job: JobId::new(0),
                instance: InstanceId::new(0),
                target: nodes,
                submitted_age: SimDuration::from_secs_f64(1.0),
                state: RequestState::Running,
                report: None,
            }],
            next: 1,
        },
        instance_job: vec![(InstanceId::new(0), JobId::new(0))],
        job_queries: vec![(
            JobId::new(0),
            (0..QUERIES as u64)
                .map(|i| random_sequence(64, SEED ^ i))
                .collect(),
        )],
        job_scores: vec![(JobId::new(0), vec![(TaskId::new(0), 42)])],
        wakeups: vec![(InstanceId::new(0), 1)],
        images: vec![(
            InstanceId::new(0),
            ImageExport::from_image(&AlignmentImage::small_demo()),
        )],
        wire_next_node: nodes,
        wire_nodes: (0..nodes).collect(),
        autoscale: None,
    }
}

/// Best-of-`reps` wall time for `f`.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn synthetic_sweep() -> Vec<SyntheticRow> {
    MEMBERSHIPS
        .iter()
        .map(|&nodes| {
            // One rep at fleet scale: a single encode/decode there already
            // runs seconds, and jitter is tiny relative to the measurement.
            let reps = if nodes >= 1_000_000 { 1 } else { REPS };
            let snap = synthetic_snapshot(nodes);
            let (encode_secs, bytes) = best_of(reps, || encode(&snap));
            let (decode_secs, decoded) =
                best_of(reps, || decode(&bytes).expect("synthetic snapshot decodes"));
            assert_eq!(decoded, snap, "{nodes}-node snapshot must round-trip");
            let row = SyntheticRow {
                nodes,
                snapshot_bytes: bytes.len(),
                encode_secs,
                decode_secs,
            };
            print_synthetic_row(&row);
            row
        })
        .collect()
}

fn print_synthetic_row(row: &SyntheticRow) {
    println!(
        "  {:>10} {:>14} {:>10.1}ms {:>10.1}ms",
        row.nodes,
        row.snapshot_bytes,
        row.encode_secs * 1e3,
        row.decode_secs * 1e3
    );
}

/// One real failover at the given snapshot cadence, following the same
/// script as the `oddci failover` CLI drill but timed from the inside.
fn live_failover(interval_ms: u64) -> LiveRow {
    let dir = std::env::temp_dir().join(format!(
        "oddci-bench-failover-{}-{interval_ms}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mk_config = |listen: std::net::SocketAddr| LiveConfig {
        nodes: PNAS,
        seed: SEED,
        heartbeat_interval: Duration::from_millis(60),
        mode: HeadendMode::Socket {
            listen,
            shards: 2,
            dispatch: 2,
            batch: 4,
        },
        snapshot_dir: Some(dir.clone()),
        snapshot_interval: Duration::from_millis(interval_ms),
        ..Default::default()
    };
    let primary = LiveOddci::start(mk_config("127.0.0.1:0".parse().expect("addr")));
    let addr = primary.wire_addr().expect("socket headends listen");

    let pnas: Vec<_> = (0..PNAS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cfg = WirePnaConfig::new(addr);
                cfg.seed = 100 + i;
                cfg.heartbeat_interval = Duration::from_millis(60);
                cfg.reconnect = Some(Duration::from_secs(30));
                run_wire_pna(cfg)
            })
        })
        .collect();

    let image = AlignmentImage {
        db_len: 200_000,
        ..AlignmentImage::small_demo()
    };
    let queries: Vec<Arc<Vec<u8>>> = (0..QUERIES as u64)
        .map(|i| Arc::new(random_sequence(64, SEED ^ i)))
        .collect();
    let req = primary
        .submit_query_job(image, queries, PNAS)
        .expect("submit succeeds");

    // Pull the plug only once a snapshot has seen the job.
    let snap_path = dir.join(SNAPSHOT_FILE);
    let deadline = Instant::now() + Duration::from_secs(30);
    let snap = loop {
        if let Ok(s) = oddci_live::snapshot::read_file(&snap_path) {
            if !s.job_queries.is_empty() {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no snapshot containing the job appeared within 30s"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    let snapshot_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    let snapshot_age = std::fs::metadata(&snap_path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| mtime.elapsed().ok())
        .map(|age| age.as_secs_f64())
        .unwrap_or(0.0);
    primary.crash();

    let t_crash = Instant::now();
    let standby = LiveOddci::start_standby(mk_config(addr), &snap).expect("standby adopts");
    let adopt_secs = t_crash.elapsed().as_secs_f64();
    let standby_epoch = standby.epoch();
    assert!(
        standby.running_jobs().contains(&req),
        "{interval_ms}ms: the adopted Provider still tracks the in-flight request"
    );
    let outcome = standby
        .wait_job(req, Duration::from_secs(60))
        .expect("job completes on the standby");

    // Hold the shutdown broadcast until every PNA has redialed, so each
    // one observes the fencing epoch and exits cleanly.
    let reconnect_deadline = Instant::now() + Duration::from_secs(10);
    while standby.wire_stats().is_some_and(|s| s.accepted < PNAS) {
        assert!(
            Instant::now() < reconnect_deadline,
            "{interval_ms}ms: PNAs did not all redial the standby"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = standby.shutdown();
    let epochs: Vec<u64> = pnas
        .into_iter()
        .filter_map(|h| h.join().ok().and_then(|r| r.ok()).map(|r| r.epoch))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.tasks_unaccounted, 0, "{interval_ms}ms: tasks leaked");
    assert_eq!(report.threads_failed, 0, "{interval_ms}ms: thread panicked");
    LiveRow {
        snapshot_interval_ms: interval_ms,
        snapshot_bytes,
        snapshot_age_at_crash_secs: snapshot_age,
        adopt_secs,
        standby_epoch,
        tasks_completed: outcome.scores.len(),
        tasks_lost: QUERIES - outcome.scores.len(),
        requeues: outcome.report.requeues,
        pnas_reacked: epochs.iter().filter(|&&e| e == standby_epoch).count() as u64,
    }
}

/// Percentile summary over a small sample, for the metrics envelope.
fn summarize(samples: &[f64]) -> HistogramSummary {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
        }
    };
    HistogramSummary {
        count: sorted.len() as u64,
        mean: if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        },
        p50: pick(0.5),
        p90: pick(0.9),
        p99: pick(0.99),
        max: sorted.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    header("X12 — headend durability: recovery-time curve");

    println!("\nSynthetic snapshot scaling (best of {REPS}):");
    println!(
        "  {:>10} {:>14} {:>12} {:>12}",
        "members", "bytes", "encode", "decode"
    );
    let synthetic = synthetic_sweep();

    println!("\nLive failover sweep ({PNAS} PNAs, {QUERIES} queries, SIGKILL-style crash):");
    println!(
        "  {:>9} {:>11} {:>11} {:>10} {:>9} {:>9} {:>9}",
        "interval", "snap bytes", "age@crash", "adopt", "tasks", "requeues", "re-acked"
    );
    let live: Vec<LiveRow> = INTERVALS_MS
        .iter()
        .map(|&ms| {
            let row = live_failover(ms);
            println!(
                "  {:>7}ms {:>11} {:>9.0}ms {:>8.1}ms {:>6}/{QUERIES} {:>9} {:>7}/{PNAS}",
                row.snapshot_interval_ms,
                row.snapshot_bytes,
                row.snapshot_age_at_crash_secs * 1e3,
                row.adopt_secs * 1e3,
                row.tasks_completed,
                row.requeues,
                row.pnas_reacked
            );
            row
        })
        .collect();

    // Shape checks: durability must be lossless at every cadence, the
    // standby always fences one epoch up, and every PNA follows it there.
    for row in &live {
        assert_eq!(
            row.tasks_lost, 0,
            "{}ms: tasks lost",
            row.snapshot_interval_ms
        );
        assert_eq!(
            row.standby_epoch, 1,
            "{}ms: wrong epoch",
            row.snapshot_interval_ms
        );
        assert_eq!(
            row.pnas_reacked, PNAS,
            "{}ms: not every PNA re-acked the standby",
            row.snapshot_interval_ms
        );
    }
    let worst_adopt = live.iter().map(|r| r.adopt_secs).fold(0.0, f64::max);
    assert!(
        worst_adopt < 5.0,
        "standby adoption took {worst_adopt:.1}s — recovery is supposed to be sub-second-ish"
    );

    write_artifact(
        "failover",
        &serde_json::json!({ "synthetic": synthetic, "live": live }),
    );
    let run = RunInfo::new("failover", SEED);
    let adopt: Vec<f64> = live.iter().map(|r| r.adopt_secs).collect();
    let metrics = serde_json::json!({
        "wakeup_latency": {"count": 0, "mean": 0.0, "std_dev": 0.0, "min": 0.0, "max": 0.0},
        "joins": live.iter().map(|r| r.pnas_reacked).sum::<u64>(),
        "tasks_completed": live.iter().map(|r| r.tasks_completed).sum::<usize>(),
        "control_deliveries": 0,
        "heartbeats_delivered": 0,
        "direct_resets": 0,
        "tasks_orphaned": live.iter().map(|r| r.tasks_lost).sum::<usize>(),
        "requeues": live.iter().map(|r| r.requeues).sum::<u64>(),
        "task_fetch_retries": 0,
        "fetch_aborts": 0,
        "faults": {"headend_crashes": live.len()},
        "synthetic": synthetic,
        "failover": live,
    });
    let phases = [
        ("headend.adopt", summarize(&adopt)),
        (
            "snapshot.encode",
            summarize(&synthetic.iter().map(|r| r.encode_secs).collect::<Vec<_>>()),
        ),
        (
            "snapshot.decode",
            summarize(&synthetic.iter().map(|r| r.decode_secs).collect::<Vec<_>>()),
        ),
    ];
    write_metrics("failover", &run, &metrics, &phases);
}
