//! Experiment F7 — Figure 7: makespan vs suitability Φ (log y), same
//! scenario as Figure 6.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin figure7
//! ```

use oddci_analytics::efficiency::{efficiency_curve, log_grid};
use oddci_analytics::InstanceParams;
use oddci_bench::{fmt_secs, header, write_artifact};
use oddci_types::DataSize;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    n_over_big_n: f64,
    points: Vec<(f64, f64)>,
}

fn main() {
    header("Figure 7 — makespan vs suitability Φ (same scenario as Figure 6)");
    println!("(s+r) = 1 KB, I = 10 MB, β = 1 Mbps, δ = 150 Kbps, N = 1000; log-scale y");
    println!();

    let params = InstanceParams::paper(1_000);
    let image = DataSize::from_megabytes(10);
    let moved = DataSize::from_bytes(1_000);
    let ratios = [1.0, 10.0, 100.0, 1_000.0];
    let grid = log_grid(1.0, 1e5, 21);

    print!("{:>10}", "phi");
    for r in ratios {
        print!(" {:>12}", format!("n/N={r}"));
    }
    println!();

    let curves: Vec<Vec<_>> = ratios
        .iter()
        .map(|&r| {
            efficiency_curve(&grid, r, image, moved, &params)
                .iter()
                .map(|p| (p.phi, p.makespan_secs))
                .collect()
        })
        .collect();

    for (i, &phi) in grid.iter().enumerate() {
        print!("{phi:>10.0}");
        for c in &curves {
            print!(" {:>12}", fmt_secs(c[i].1));
        }
        println!();
    }

    // Shape checks for the figure:
    for c in &curves {
        // Makespan grows monotonically with phi at fixed n/N...
        assert!(c.windows(2).all(|w| w[1].1 > w[0].1));
    }
    // ...and, at fixed phi, higher n/N means longer makespan (the
    // efficiency/makespan trade-off the paper highlights).
    for i in 0..grid.len() {
        for pair in curves.windows(2) {
            assert!(pair[1][i].1 >= pair[0][i].1);
        }
    }
    // At high phi the curves become straight lines on log-log axes
    // (makespan ~ linear in phi): check the slope stabilizes near 1.
    let tail = &curves[2];
    let slope = (tail[20].1 / tail[15].1).ln() / (tail[20].0 / tail[15].0).ln();
    assert!(
        (0.9..1.1).contains(&slope),
        "log-log slope at high phi should be ~1, got {slope:.3}"
    );

    println!();
    println!("shape checks pass: makespan monotone in phi and in n/N; high-phi");
    println!("log-log slope = {slope:.3} (≈1 ⇒ the straight lines of the paper's figure).");
    println!("achieving high efficiency (Figure 6) costs makespan (this figure) —");
    println!("the compromise the paper says is \"always possible to find\".");

    let series: Vec<Series> = ratios
        .iter()
        .zip(curves)
        .map(|(&r, points)| Series {
            n_over_big_n: r,
            points,
        })
        .collect();
    write_artifact("figure7", &series);
}
