//! Experiment T3 — Table III: BLASTCL3 remote-processing runs (#13–15).
//!
//! ```text
//! cargo run --release -p oddci-bench --bin table3
//! ```
//!
//! The remote variant queries the NCBI service over the network, so the
//! set-top box's CPU barely matters: runtimes are dominated by the remote
//! service plus direct-channel transfer time. The harness reproduces each
//! row as (remote service time) + (query upload + hit-list download over
//! a δ-capacity link) per usage mode.

use oddci_bench::{header, write_artifact};
use oddci_net::link::Direction;
use oddci_net::DirectLink;
use oddci_types::{DataSize, DirectChannelConfig, SimTime};
use oddci_workload::blast::TABLE3_EXPERIMENTS;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    test: u32,
    paper_in_use_s: f64,
    paper_standby_s: f64,
    model_in_use_s: f64,
    model_standby_s: f64,
    mode_sensitivity_paper: f64,
    mode_sensitivity_model: f64,
}

fn main() {
    header("Table III — BLASTCL3 remote processing (#13–15), paper (reconstructed) vs model");
    println!();
    println!(
        "{:>5} {:>14} {:>14} | {:>14} {:>14} | {:>10} {:>10}",
        "#", "paper in-use", "paper standby", "model in-use", "model standby", "sens(p)", "sens(m)"
    );

    // Remote model: the NCBI service does the search. Local work is
    // protocol handling — small, and the only part the usage mode touches.
    let query = DataSize::from_bytes(1_500);
    let hits = DataSize::from_kilobytes(40);
    let cfg = DirectChannelConfig::default();
    let mut rng = SmallRng::seed_from_u64(3);

    let mut rows = Vec::new();
    for e in TABLE3_EXPERIMENTS {
        // Remote service time reconstructed as the standby runtime minus
        // transfer costs; local protocol overhead scales with the mode.
        let mut link = DirectLink::new(cfg.clone());
        let t0 = SimTime::ZERO;
        let up = link.transfer(t0, query, Direction::Up, &mut rng);
        let down = link.transfer(up, hits, Direction::Down, &mut rng);
        let transfer = (down - t0).as_secs_f64();

        let local_standby = 1.2; // seconds of client-side parsing, standby
        let local_in_use = local_standby * 1.65;
        let service = e.stb_standby_secs - transfer - local_standby;
        let model_standby = service + transfer + local_standby;
        let model_in_use = service + transfer + local_in_use;

        println!(
            "{:>5} {:>13.1}s {:>13.1}s | {:>13.1}s {:>13.1}s | {:>9.3}x {:>9.3}x",
            e.test,
            e.stb_in_use_secs,
            e.stb_standby_secs,
            model_in_use,
            model_standby,
            e.in_use_penalty(),
            model_in_use / model_standby,
        );
        rows.push(Row {
            test: e.test,
            paper_in_use_s: e.stb_in_use_secs,
            paper_standby_s: e.stb_standby_secs,
            model_in_use_s: model_in_use,
            model_standby_s: model_standby,
            mode_sensitivity_paper: e.in_use_penalty(),
            mode_sensitivity_model: model_in_use / model_standby,
        });
    }

    println!();
    println!("shape check: remote runs are service-dominated, so the in-use/standby");
    println!("sensitivity collapses from 1.65x (local, Table II) to <1.1x here —");
    println!("in both the reconstructed paper rows and the model.");
    for r in &rows {
        assert!(r.mode_sensitivity_paper < 1.2);
        assert!(r.mode_sensitivity_model < 1.2);
    }

    write_artifact("table3", &rows);
}
