//! Experiment X3 (extension) — probability-gated instance sizing: how
//! accurately does broadcasting `p = target/pool` assemble an instance of
//! the requested size (§3.2's sizing mechanism)?
//!
//! ```text
//! cargo run --release -p oddci-bench --bin sizing
//! ```

use oddci_bench::{header, write_artifact};
use oddci_core::{World, WorldConfig};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    audience: u64,
    target: u64,
    achieved: u64,
    error_pct: f64,
    wakeup_broadcasts: u32,
    direct_resets: u64,
}

fn main() {
    header("X3 — probability-gated instance sizing accuracy");
    println!();
    println!(
        "{:>9} {:>8} {:>9} {:>8} {:>9} {:>13}",
        "audience", "target", "achieved", "err %", "wakeups", "direct resets"
    );

    let cases: Vec<(u64, u64)> = vec![
        (1_000, 10),
        (1_000, 100),
        (1_000, 500),
        (10_000, 100),
        (10_000, 1_000),
        (10_000, 5_000),
        (50_000, 500),
        (50_000, 25_000),
    ];

    let rows: Vec<Row> = cases
        .par_iter()
        .map(|&(audience, target)| {
            let mut cfg = WorldConfig {
                nodes: audience,
                controller_tick: SimDuration::from_secs(30),
                ..Default::default()
            };
            cfg.policy.heartbeat.interval = SimDuration::from_secs(30);

            // A long job keeps the instance alive while it stabilizes.
            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(1),
                DataSize::from_bytes(100),
                DataSize::from_bytes(100),
                SimDuration::from_secs(3_600),
                9,
            )
            .generate(target * 100);

            let mut sim = World::simulation(cfg, audience ^ target);
            let request = sim.submit_job(job, target);
            // Let sizing converge: a few controller ticks + wakeup cycle.
            sim.run_until(SimTime::from_secs(1_800));
            let world = sim.world();
            let inst = world.provider().instance_of(request).unwrap();
            let achieved = world.controller().instance_size(inst);
            Row {
                audience,
                target,
                achieved,
                error_pct: 100.0 * (achieved as f64 - target as f64) / target as f64,
                wakeup_broadcasts: world.controller().instance(inst).unwrap().wakeups_sent,
                direct_resets: world.metrics().direct_resets.get(),
            }
        })
        .collect();

    for r in &rows {
        println!(
            "{:>9} {:>8} {:>9} {:>+7.1}% {:>9} {:>13}",
            r.audience, r.target, r.achieved, r.error_pct, r.wakeup_broadcasts, r.direct_resets
        );
    }

    // Shape checks: sizing lands within ±10% after convergence and never
    // overshoots more than the trimming machinery can cut back.
    for r in &rows {
        assert!(
            r.error_pct.abs() <= 10.0,
            "audience={} target={}: {:.1}% off",
            r.audience,
            r.target,
            r.error_pct
        );
    }
    println!();
    println!("one binomial broadcast plus recomposition/trimming converges every");
    println!("case to within ±10% of the requested size — the paper's claim that");
    println!("\"it is always possible to precisely define the size of the instance\".");

    write_artifact("sizing", &rows);
}
