//! Experiment X10 — the wire tax: in-process vs socket-backed live plane.
//!
//! Runs the same query job twice: once against the in-process sharded
//! headend (channels all the way down, the X8 configuration scaled to
//! this task count) and once against the socket-backed headend with the
//! same number of PNAs connecting over loopback TCP — every wakeup,
//! heartbeat, task fetch and result upload crossing a real socket through
//! the framed, checksummed envelope layer.
//!
//! The headline number is the throughput ratio: what one pays, per task,
//! for real framing + checksums + kernel round trips relative to an
//! in-process channel send. The socket row also records the transport
//! counters (frames, multi-chunk image transfers, checksum rejects) so a
//! clean run is distinguishable from one that survived on retries.
//!
//! ```text
//! cargo run -p oddci-bench --release --bin wire
//! ```
//!
//! Artifact: `results/wire.json` (both rows plus the ratio).

use oddci_bench::{header, write_artifact};
use oddci_live::wire::WirePnaConfig;
use oddci_live::{run_wire_pna, AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci_workload::alignment::random_sequence;
use serde::Serialize;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

const NODES: u64 = 4;
const TASKS: u64 = 4_000;
const SHARDS: usize = 2;
const DISPATCH: usize = 2;
const BATCH: usize = 16;
const SEED: u64 = 2025;
/// Database bytes in the wakeup image: comfortably above one 16 KiB
/// frame chunk, so the socket run must exercise chunked reassembly.
const DB_LEN: usize = 20_000;
/// Runs per configuration; the best is kept (same rationale as X8: the
/// container timeshares one core, and max is the least noise-sensitive
/// estimator of capacity).
const REPS: usize = 3;

#[derive(Debug, Clone, Serialize)]
struct Row {
    mode: String,
    nodes: u64,
    tasks: u64,
    makespan_secs: f64,
    throughput_tasks_per_sec: f64,
    requeues: u64,
    tasks_unaccounted: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    wire: Option<serde_json::Value>,
}

fn image() -> AlignmentImage {
    AlignmentImage {
        db_len: DB_LEN,
        ..AlignmentImage::small_demo()
    }
}

fn queries() -> Vec<Arc<Vec<u8>>> {
    (0..TASKS)
        .map(|i| Arc::new(random_sequence(16, SEED ^ i)))
        .collect()
}

fn in_process_once() -> Row {
    let live = LiveOddci::start(LiveConfig {
        nodes: NODES,
        seed: SEED,
        mode: HeadendMode::Sharded {
            shards: SHARDS,
            dispatch: DISPATCH,
            batch: BATCH,
        },
        ..Default::default()
    });
    let outcome = live
        .run_query_job(image(), queries(), NODES, Duration::from_secs(300))
        .expect("in-process job completes within 300s");
    let shutdown = live.shutdown();
    assert_eq!(shutdown.tasks_unaccounted, 0, "in-process run leaked tasks");
    assert_eq!(shutdown.threads_failed, 0, "in-process run lost threads");
    let makespan = outcome.report.makespan.as_secs_f64();
    Row {
        mode: "in-process".to_string(),
        nodes: NODES,
        tasks: TASKS,
        makespan_secs: makespan,
        throughput_tasks_per_sec: TASKS as f64 / makespan.max(1e-9),
        requeues: outcome.report.requeues,
        tasks_unaccounted: shutdown.tasks_unaccounted,
        wire: None,
    }
}

fn socket_once() -> Row {
    let live = LiveOddci::start(LiveConfig {
        nodes: NODES,
        seed: SEED,
        mode: HeadendMode::Socket {
            listen: SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            shards: SHARDS,
            dispatch: DISPATCH,
            batch: BATCH,
        },
        ..Default::default()
    });
    let addr = live.wire_addr().expect("socket mode exposes its address");
    let pnas: Vec<_> = (0..NODES)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cfg = WirePnaConfig::new(addr);
                cfg.seed = SEED ^ (0xD1A1 + i);
                run_wire_pna(cfg).expect("pna runs to shutdown")
            })
        })
        .collect();
    let outcome = live
        .run_query_job(image(), queries(), NODES, Duration::from_secs(300))
        .expect("socket job completes within 300s");
    let stats = live.wire_stats().expect("socket mode exposes wire stats");
    let shutdown = live.shutdown();
    for pna in pnas {
        pna.join().expect("pna thread exits cleanly");
    }

    assert_eq!(shutdown.tasks_unaccounted, 0, "socket run leaked tasks");
    assert_eq!(shutdown.threads_failed, 0, "socket run lost threads");
    assert!(
        stats.multi_chunk_tx >= 1,
        "the wakeup image must stream in more than one chunk"
    );
    assert_eq!(
        stats.checksum_rejects, 0,
        "a clean loopback run rejects nothing"
    );

    let makespan = outcome.report.makespan.as_secs_f64();
    Row {
        mode: "socket".to_string(),
        nodes: NODES,
        tasks: TASKS,
        makespan_secs: makespan,
        throughput_tasks_per_sec: TASKS as f64 / makespan.max(1e-9),
        requeues: outcome.report.requeues,
        tasks_unaccounted: shutdown.tasks_unaccounted,
        wire: Some(serde_json::json!({
            "connections": stats.accepted,
            "tx_frames": stats.tx_frames,
            "rx_frames": stats.rx_frames,
            "tx_bytes": stats.tx_bytes,
            "rx_bytes": stats.rx_bytes,
            "multi_chunk_tx": stats.multi_chunk_tx,
            "checksum_rejects": stats.checksum_rejects,
            "resyncs": stats.resyncs,
            "duplicates": stats.duplicates,
        })),
    }
}

fn best_of(run: impl Fn() -> Row) -> Row {
    (0..REPS)
        .map(|_| run())
        .max_by(|a, b| {
            a.throughput_tasks_per_sec
                .total_cmp(&b.throughput_tasks_per_sec)
        })
        .expect("at least one rep")
}

fn main() {
    header("X10 — the wire tax: in-process vs socket-backed live plane");
    println!(
        "{NODES} PNAs, {TASKS} tasks, {SHARDS} shards / {DISPATCH} dispatch / batch {BATCH}, \
         {DB_LEN}-byte image, best of {REPS}\n"
    );

    let inproc = best_of(in_process_once);
    let socket = best_of(socket_once);
    let ratio = inproc.throughput_tasks_per_sec / socket.throughput_tasks_per_sec.max(1e-9);

    println!("  plane        makespan   tasks/s   requeues");
    for row in [&inproc, &socket] {
        println!(
            "  {:<11} {:>8.3}s {:>9.0} {:>10}",
            row.mode, row.makespan_secs, row.throughput_tasks_per_sec, row.requeues
        );
    }
    println!("\n  wire tax: in-process is {ratio:.2}x the socket plane's throughput");
    if let Some(wire) = &socket.wire {
        let n = |key: &str| wire[key].as_u64().unwrap_or(0);
        println!(
            "  socket run: {} conn(s), {} tx / {} rx frames, {} multi-chunk tx, {} checksum reject(s)",
            n("connections"),
            n("tx_frames"),
            n("rx_frames"),
            n("multi_chunk_tx"),
            n("checksum_rejects")
        );
    }

    // Crossing a kernel boundary per round trip cannot be free — if the
    // socket plane ever *beats* in-process channels something is wrong
    // with the measurement (e.g. the job quietly ran on local threads).
    assert!(
        ratio >= 1.0,
        "socket throughput {:.0}/s implausibly beats in-process {:.0}/s",
        socket.throughput_tasks_per_sec,
        inproc.throughput_tasks_per_sec
    );

    write_artifact(
        "wire",
        &serde_json::json!({
            "rows": [inproc, socket],
            "in_process_over_socket": ratio,
        }),
    );
}
