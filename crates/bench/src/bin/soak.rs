//! Experiment X8 — live headend soak: task throughput vs architecture.
//!
//! Runs the same soak job (8 receiver threads, 40 000 cheap index-scan
//! tasks) against the single-loop baseline headend and the sharded
//! headend at 1/2/4/8 controller shards, and records throughput for each
//! configuration plus the per-phase latency breakdown of the 8-shard run.
//!
//! Tasks are deliberately light (16-base random queries against a 400-base
//! database — a handful of k-mer lookups each) so the measurement is
//! dominated by headend round trips, i.e. by the thing the sharded
//! architecture changes. Each configuration runs [`REPS`] times and keeps
//! the best run: the container this executes in timeshares one core, and
//! the max is the least scheduler-noise-sensitive estimator of capacity.
//!
//! ```text
//! cargo run -p oddci-bench --release --bin soak
//! ```
//!
//! Artifacts: `results/soak.json` (all rows) and
//! `results/soak.metrics.json` (schema-checked envelope; soak rows ride in
//! `metrics.soak`).

use oddci_bench::{header, write_artifact, write_metrics, RunInfo};
use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci_telemetry::{EventKind, Phase, Telemetry, CONTROL_TRACK};
use oddci_workload::alignment::random_sequence;
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

const NODES: u64 = 8;
const TASKS: u64 = 40_000;
const DISPATCH: usize = 4;
const BATCH: usize = 64;
const SEED: u64 = 2024;
/// Runs per configuration; the best is kept (see module docs).
const REPS: usize = 3;

#[derive(Debug, Clone, Serialize)]
struct Row {
    mode: String,
    shards: usize,
    dispatch: usize,
    batch: usize,
    nodes: u64,
    tasks: u64,
    makespan_secs: f64,
    throughput_tasks_per_sec: f64,
    requeues: u64,
    tasks_unaccounted: u64,
}

fn soak_once(mode: HeadendMode) -> (Row, Telemetry) {
    let image = AlignmentImage {
        db_len: 400,
        ..AlignmentImage::small_demo()
    };
    let queries: Vec<Arc<Vec<u8>>> = (0..TASKS)
        .map(|i| Arc::new(random_sequence(16, SEED ^ i)))
        .collect();
    let tele = Telemetry::recording();
    let live = LiveOddci::start(LiveConfig {
        nodes: NODES,
        seed: SEED,
        telemetry: tele.clone(),
        mode,
        ..Default::default()
    });
    let outcome = live
        .run_query_job(image, queries, NODES, Duration::from_secs(300))
        .expect("soak job completes within 300s");
    let shutdown = live.shutdown();

    assert_eq!(
        outcome.scores.len() as u64,
        TASKS,
        "every task produced a score"
    );
    let makespan = outcome.report.makespan.as_secs_f64();
    let (mode_name, shards, dispatch, batch) = match mode {
        HeadendMode::SingleLoop => ("single-loop".to_string(), 0, 0, 1),
        HeadendMode::Sharded {
            shards,
            dispatch,
            batch,
        } => ("sharded".to_string(), shards, dispatch, batch),
    };
    let row = Row {
        mode: mode_name,
        shards,
        dispatch,
        batch,
        nodes: NODES,
        tasks: TASKS,
        makespan_secs: makespan,
        throughput_tasks_per_sec: TASKS as f64 / makespan.max(1e-9),
        requeues: outcome.report.requeues,
        tasks_unaccounted: shutdown.tasks_unaccounted,
    };
    (row, tele)
}

fn soak_best(mode: HeadendMode) -> (Row, Telemetry) {
    (0..REPS)
        .map(|_| soak_once(mode))
        .max_by(|(a, _), (b, _)| {
            a.throughput_tasks_per_sec
                .total_cmp(&b.throughput_tasks_per_sec)
        })
        .expect("at least one rep")
}

/// Wakeup latency (first carousel publish → each node's acceptance), from
/// the run's event stream: count/mean/std_dev/min/max in seconds.
fn wakeup_summary(tele: &Telemetry) -> serde_json::Value {
    let events = tele.events();
    let first_publish = events
        .iter()
        .find(|e| e.phase == Phase::CarouselPublish && e.track == CONTROL_TRACK)
        .map(|e| e.ts_us);
    let lats: Vec<f64> = first_publish
        .map(|t0| {
            events
                .iter()
                .filter(|e| e.phase == Phase::PnaAccept && e.kind == EventKind::Instant)
                .map(|e| e.ts_us.saturating_sub(t0) as f64 / 1e6)
                .collect()
        })
        .unwrap_or_default();
    if lats.is_empty() {
        return serde_json::json!(
            {"count": 0, "mean": 0.0, "std_dev": 0.0, "min": 0.0, "max": 0.0}
        );
    }
    let n = lats.len() as f64;
    let mean = lats.iter().sum::<f64>() / n;
    let var = lats.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
    serde_json::json!({
        "count": lats.len(),
        "mean": mean,
        "std_dev": var.sqrt(),
        "min": lats.iter().cloned().fold(f64::INFINITY, f64::min),
        "max": lats.iter().cloned().fold(0.0_f64, f64::max),
    })
}

fn main() {
    header("X8 — live headend soak: throughput vs shard count");
    println!(
        "{NODES} receiver threads, {TASKS} tasks, dispatch {DISPATCH}, batch {BATCH}, best of {REPS}\n"
    );

    let (baseline, _) = soak_best(HeadendMode::SingleLoop);
    let mut rows = vec![baseline.clone()];
    let mut eight_shard: Option<(Row, Telemetry)> = None;
    for shards in [1usize, 2, 4, 8] {
        let (row, tele) = soak_best(HeadendMode::Sharded {
            shards,
            dispatch: DISPATCH,
            batch: BATCH,
        });
        if shards == 8 {
            eight_shard = Some((row.clone(), tele));
        }
        rows.push(row);
    }

    println!("  headend          shards  makespan   tasks/s   vs baseline");
    for row in &rows {
        println!(
            "  {:<15} {:>7} {:>8.3}s {:>9.0}   {:>6.2}x",
            row.mode,
            row.shards,
            row.makespan_secs,
            row.throughput_tasks_per_sec,
            row.throughput_tasks_per_sec / baseline.throughput_tasks_per_sec
        );
    }

    let (best8, tele8) = eight_shard.expect("8-shard config ran");
    let speedup = best8.throughput_tasks_per_sec / baseline.throughput_tasks_per_sec;
    println!("\n  8-shard speedup over single-loop: {speedup:.2}x");

    let phases = tele8.phase_breakdown();
    println!("\n  per-phase breakdown (8 shards):");
    println!("    phase            count      mean       p99");
    for (label, s) in &phases {
        println!(
            "    {label:<15} {:>6} {:>9.1}µs {:>9.1}µs",
            s.count,
            s.mean * 1e6,
            s.p99 * 1e6
        );
    }

    // Shape checks: every configuration accounted for every task, and the
    // sharded headend at 8 shards clears 2x the single-loop baseline.
    for row in &rows {
        assert_eq!(
            row.tasks_unaccounted, 0,
            "{} ({} shards): tasks leaked",
            row.mode, row.shards
        );
    }
    assert!(
        speedup >= 2.0,
        "8-shard throughput {:.0} is below 2x the single-loop baseline {:.0}",
        best8.throughput_tasks_per_sec,
        baseline.throughput_tasks_per_sec
    );

    write_artifact("soak", &rows);
    let run = RunInfo::new("soak", SEED);
    let metrics = serde_json::json!({
        "wakeup_latency": wakeup_summary(&tele8),
        "joins": tele8.phase_events(Phase::PnaAccept),
        "tasks_completed": best8.tasks,
        "control_deliveries": tele8.phase_events(Phase::CarouselPublish),
        "heartbeats_delivered": tele8.phase_events(Phase::Heartbeat),
        "direct_resets": tele8.phase_events(Phase::DirectReset),
        "tasks_orphaned": best8.tasks_unaccounted,
        "requeues": best8.requeues,
        "task_fetch_retries": tele8.phase_events(Phase::Retry),
        "fetch_aborts": 0,
        "faults": {},
        "soak": rows,
    });
    write_metrics("soak", &run, &metrics, &phases);
}
