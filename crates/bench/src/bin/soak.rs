//! Experiment X8 — live headend soak: task throughput vs architecture.
//!
//! Runs the same soak job (8 receiver threads, 40 000 cheap index-scan
//! tasks) against the single-loop baseline headend and the sharded
//! headend at 1/2/4/8 controller shards, and records throughput for each
//! configuration plus the per-phase latency breakdown of the 8-shard run.
//!
//! Tasks are deliberately light (16-base random queries against a 400-base
//! database — a handful of k-mer lookups each) so the measurement is
//! dominated by headend round trips, i.e. by the thing the sharded
//! architecture changes. Each configuration runs [`REPS`] times and keeps
//! the best run: the container this executes in timeshares one core, and
//! the max is the least scheduler-noise-sensitive estimator of capacity.
//!
//! ```text
//! cargo run -p oddci-bench --release --bin soak
//! ```
//!
//! After the shard sweep, two streamed-trace runs exercise the
//! telemetry sink layer end to end:
//!
//! * the X8 scenario once more with a streaming JSONL sink attached
//!   (per-headend-thread lanes) — with default settings it must drop
//!   **zero** events, and the wakeup summary in the metrics artifact is
//!   recomputed from the *streamed* trace rather than the in-memory
//!   ring (which only ever holds a bounded window);
//! * experiment X9 — a million-node discrete-event sweep streaming
//!   JSONL + Chrome traces whose event count far exceeds any ring, with
//!   the `W = 1.5·I/β` agreement check evaluated from the on-disk
//!   artifact. `ODDCI_SWEEP_NODES` scales the audience down for quick
//!   local iteration; `ODDCI_KEEP_TRACES=1` keeps the (large) trace
//!   files instead of deleting them after validation;
//! * experiment X11 — the same sweep once more through the *binary*
//!   sink, which must drop **zero** events where X9's two-format text
//!   writer sheds half the torrent. The binary artifact is converted
//!   back to JSONL offline and the wakeup agreement check is evaluated
//!   from the *converted* trace, proving the round trip lossless at
//!   full scale.
//!
//! Artifacts: `results/soak.json` (all rows), `results/soak_stream.json`
//! (streamed-run summaries) and `results/soak.metrics.json`
//! (schema-checked envelope; soak rows ride in `metrics.soak`, the X9
//! summary in `metrics.stream_sweep`, X11 in
//! `metrics.stream_sweep_binary`).

use oddci_analytics::wakeup_envelope;
use oddci_bench::{header, results_dir, write_artifact, write_metrics, RunInfo};
use oddci_core::{World, WorldConfig};
use oddci_live::{AlignmentImage, HeadendMode, LiveConfig, LiveOddci};
use oddci_telemetry::binary;
use oddci_telemetry::sink::{read_jsonl_events, span_durations_us};
use oddci_telemetry::{Event, EventKind, Phase, StreamingSink, Telemetry, CONTROL_TRACK};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::alignment::random_sequence;
use oddci_workload::JobGenerator;
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

const NODES: u64 = 8;
const TASKS: u64 = 40_000;
const DISPATCH: usize = 4;
const BATCH: usize = 64;
const SEED: u64 = 2024;
/// Runs per configuration; the best is kept (see module docs).
const REPS: usize = 3;

/// X9 defaults: a million-receiver audience, enough short tasks that the
/// event stream (~13.5 M events) dwarfs the default 262 144-event ring.
const SWEEP_NODES: u64 = 1_000_000;
const SWEEP_TARGET: u64 = 4_000;
const SWEEP_TASKS: u64 = 120_000;
const SWEEP_COST_SECS: f64 = 5.0;
const SWEEP_IMAGE_MB: u64 = 2;

#[derive(Debug, Clone, Serialize)]
struct Row {
    mode: String,
    shards: usize,
    dispatch: usize,
    batch: usize,
    nodes: u64,
    tasks: u64,
    makespan_secs: f64,
    throughput_tasks_per_sec: f64,
    requeues: u64,
    tasks_unaccounted: u64,
}

fn soak_once(mode: HeadendMode, sink: Option<Arc<StreamingSink>>) -> (Row, Telemetry) {
    let image = AlignmentImage {
        db_len: 400,
        ..AlignmentImage::small_demo()
    };
    let queries: Vec<Arc<Vec<u8>>> = (0..TASKS)
        .map(|i| Arc::new(random_sequence(16, SEED ^ i)))
        .collect();
    let mut tele = Telemetry::recording();
    if let Some(sink) = sink {
        tele = tele.with_sink(sink);
    }
    let live = LiveOddci::start(LiveConfig {
        nodes: NODES,
        seed: SEED,
        telemetry: tele.clone(),
        mode,
        ..Default::default()
    });
    let outcome = live
        .run_query_job(image, queries, NODES, Duration::from_secs(300))
        .expect("soak job completes within 300s");
    let shutdown = live.shutdown();

    assert_eq!(
        outcome.scores.len() as u64,
        TASKS,
        "every task produced a score"
    );
    let makespan = outcome.report.makespan.as_secs_f64();
    let (mode_name, shards, dispatch, batch) = match mode {
        HeadendMode::SingleLoop => ("single-loop".to_string(), 0, 0, 1),
        HeadendMode::Sharded {
            shards,
            dispatch,
            batch,
        } => ("sharded".to_string(), shards, dispatch, batch),
        // The X8 soak drives in-process headends only; the socket-backed
        // plane has its own experiment (X10, `bin/wire.rs`).
        HeadendMode::Socket { .. } => unreachable!("soak never runs the socket headend"),
    };
    let row = Row {
        mode: mode_name,
        shards,
        dispatch,
        batch,
        nodes: NODES,
        tasks: TASKS,
        makespan_secs: makespan,
        throughput_tasks_per_sec: TASKS as f64 / makespan.max(1e-9),
        requeues: outcome.report.requeues,
        tasks_unaccounted: shutdown.tasks_unaccounted,
    };
    (row, tele)
}

fn soak_best(mode: HeadendMode) -> (Row, Telemetry) {
    (0..REPS)
        .map(|_| soak_once(mode, None))
        .max_by(|(a, _), (b, _)| {
            a.throughput_tasks_per_sec
                .total_cmp(&b.throughput_tasks_per_sec)
        })
        .expect("at least one rep")
}

/// Wakeup latency (first carousel publish → each node's acceptance), from
/// an event slice: count/mean/std_dev/min/max in seconds. The slice may be
/// a ring snapshot or — preferably, since the ring wraps near 40 000 tasks
/// — the read-back of a streamed trace, which is complete by construction
/// whenever the sink reports zero drops.
fn wakeup_summary(events: &[Event]) -> serde_json::Value {
    let first_publish = events
        .iter()
        .find(|e| e.phase == Phase::CarouselPublish && e.track == CONTROL_TRACK)
        .map(|e| e.ts_us);
    let lats: Vec<f64> = first_publish
        .map(|t0| {
            events
                .iter()
                .filter(|e| e.phase == Phase::PnaAccept && e.kind == EventKind::Instant)
                .map(|e| e.ts_us.saturating_sub(t0) as f64 / 1e6)
                .collect()
        })
        .unwrap_or_default();
    if lats.is_empty() {
        return serde_json::json!(
            {"count": 0, "mean": 0.0, "std_dev": 0.0, "min": 0.0, "max": 0.0}
        );
    }
    let n = lats.len() as f64;
    let mean = lats.iter().sum::<f64>() / n;
    let var = lats.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
    serde_json::json!({
        "count": lats.len(),
        "mean": mean,
        "std_dev": var.sqrt(),
        "min": lats.iter().cloned().fold(f64::INFINITY, f64::min),
        "max": lats.iter().cloned().fold(0.0_f64, f64::max),
    })
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn keep_traces() -> bool {
    std::env::var("ODDCI_KEEP_TRACES").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn mean_secs(durs: &[u64]) -> f64 {
    if durs.is_empty() {
        0.0
    } else {
        durs.iter().sum::<u64>() as f64 / durs.len() as f64 / 1e6
    }
}

/// X8 once more with a streaming sink attached: one lane per headend
/// thread (carousel + 8 shards + 4 dispatchers), node traffic spread
/// across them. With default lane capacity nothing may be dropped, so
/// the on-disk trace is the *complete* event record of the run — unlike
/// the ring, which holds at most its capacity — and the wakeup summary
/// in the metrics artifact is computed from it.
fn streamed_soak() -> (Row, serde_json::Value, Vec<Event>) {
    let path = results_dir().join("soak.trace.jsonl");
    let sink = StreamingSink::builder()
        .jsonl(&path)
        .lanes(1 + 8 + DISPATCH)
        .meta("scenario", "soak")
        .meta("seed", SEED.to_string())
        .meta("plane", "live")
        .start()
        .expect("open soak trace stream");
    let (row, tele) = soak_once(
        HeadendMode::Sharded {
            shards: 8,
            dispatch: DISPATCH,
            batch: BATCH,
        },
        Some(sink.clone()),
    );
    let summary = sink.finish().expect("soak trace stream closes");
    let stats = summary.stats;
    assert_eq!(
        stats.emitted,
        stats.persisted + stats.dropped,
        "sink accounting identity violated"
    );
    assert_eq!(
        stats.dropped, 0,
        "X8 with default lane capacity must not drop events"
    );
    assert_eq!(tele.events_dropped(), 0, "telemetry drop counter disagrees");
    assert_eq!(row.tasks_unaccounted, 0, "streamed rep leaked tasks");

    let text = std::fs::read_to_string(&path).expect("read soak trace back");
    let (header, events) = read_jsonl_events(&text).expect("soak trace parses");
    assert_eq!(header.clock, "us", "unexpected stream clock");
    assert_eq!(
        events.len() as u64,
        stats.persisted,
        "streamed file holds exactly the persisted events"
    );
    let ring_len = tele.events().len();
    println!(
        "\n  streamed X8 rep: {} emitted, {} persisted, 0 dropped, {} flushes ({} bytes; ring holds {ring_len})",
        stats.emitted,
        stats.persisted,
        stats.flushes,
        summary.outputs.iter().map(|o| o.bytes).sum::<u64>(),
    );
    if !keep_traces() {
        let _ = std::fs::remove_file(&path);
    }
    let info = serde_json::json!({
        "scenario": "x8-streamed",
        "emitted": stats.emitted,
        "persisted": stats.persisted,
        "dropped": stats.dropped,
        "flushes": stats.flushes,
        "ring_events": ring_len,
    });
    (row, info, events)
}

/// X9 / X11 — million-node streamed sweep on the discrete-event plane.
/// The event stream (~13.5 M events at the default task count) overflows
/// the default ring ~50× over. X9 (`binary = false`) streams JSONL +
/// Chrome text, shedding part of the later task torrent with exact loss
/// accounting; X11 (`binary = true`) streams the compact binary format,
/// which must keep up with the full torrent — **zero** drops — and the
/// `W = 1.5·I/β` agreement check is then evaluated from the trace
/// *converted back to JSONL*, proving the offline round trip lossless.
fn streamed_sweep(binary_sink: bool) -> serde_json::Value {
    let nodes = env_u64("ODDCI_SWEEP_NODES", SWEEP_NODES);
    let tasks = env_u64("ODDCI_SWEEP_TASKS", SWEEP_TASKS);
    let target = SWEEP_TARGET.min(nodes);
    let (stem, scenario) = if binary_sink {
        ("x11", "x11-binary-sweep")
    } else {
        ("x9", "x9-streamed-sweep")
    };
    header(if binary_sink {
        "X11 — million-node sweep through the zero-drop binary sink"
    } else {
        "X9 — million-node streamed-trace sweep"
    });
    println!(
        "{nodes} receivers, instance {target}, {tasks} tasks x {SWEEP_COST_SECS}s, {SWEEP_IMAGE_MB} MB image\n"
    );

    let jsonl_path = results_dir().join(format!("{stem}.trace.jsonl"));
    let chrome_path = results_dir().join(format!("{stem}.trace.stream.json"));
    let bin_path = results_dir().join(format!("{stem}.trace.bin"));
    let builder = if binary_sink {
        // X11: one compact output. Varint records cost a fraction of the
        // two JSON serializations, so the writers keep pace with the sim
        // and nothing is shed.
        StreamingSink::builder().binary(&bin_path)
    } else {
        StreamingSink::builder()
            .jsonl(&jsonl_path)
            .chrome(&chrome_path)
    };
    let sink = builder
        .lanes(4)
        // The single-threaded sim emits ~13.5 M events in under a minute
        // of wall clock — a sustained rate beyond what one writer can serialize
        // into two text formats, so X9's later task torrent is shed
        // (counted, never blocking). Deep lanes (4 × 2^18 events ≈ 32 MB
        // bounded) matter for a different reason: they absorb the initial
        // 4 000-node join wave, so the wakeup record — the part the ring
        // loses first — reaches disk complete.
        .lane_capacity(1 << 18)
        .meta("scenario", scenario)
        .meta("seed", SEED.to_string())
        .meta("plane", "sim")
        .start()
        .expect("open sweep stream");
    // Default ring capacity on purpose: X9 demonstrates that the ring
    // wraps at this scale while the streamed artifact stays complete.
    let tele = Telemetry::recording().with_sink(sink.clone());
    let cfg = WorldConfig {
        nodes,
        telemetry: tele.clone(),
        ..Default::default()
    };
    let beta = cfg.dtv.beta;
    let image = DataSize::from_megabytes(SWEEP_IMAGE_MB);
    let job = JobGenerator::homogeneous(
        image,
        DataSize::from_bytes(500),
        DataSize::from_bytes(500),
        SimDuration::from_secs_f64(SWEEP_COST_SECS),
        SEED,
    )
    .generate(tasks);

    let wall = std::time::Instant::now();
    let mut sim = World::simulation(cfg, SEED);
    let request = sim.submit_job(job, target);
    let report = sim
        .run_request(request, SimTime::from_secs(365 * 24 * 3600))
        .expect("sweep completes within a simulated year");
    let wall = wall.elapsed();
    let summary = sink.finish().expect("sweep stream closes");
    let stats = summary.stats;
    let bytes: u64 = summary.outputs.iter().map(|o| o.bytes).sum();

    assert_eq!(report.tasks_completed, tasks, "sweep lost tasks");
    assert_eq!(
        stats.emitted,
        stats.persisted + stats.dropped,
        "sink accounting identity violated"
    );
    let ring_len = tele.events().len();

    // Read the artifact back and recompute the §5.1 wakeup agreement
    // from it: mean wait-for-carousel plus mean DVE boot must land
    // inside the [I/β, 2I/β] envelope around W = 1.5·I/β. For X11 the
    // artifact read is itself the offline `trace convert` path: binary
    // file → decoded events → re-emitted JSONL, checked end to end.
    if binary_sink {
        assert_eq!(
            stats.dropped, 0,
            "X11's binary sink must persist every emitted event"
        );
        let trace = binary::read_file(&bin_path).expect("read binary sweep trace back");
        assert!(
            trace.truncated.is_none(),
            "binary trace reports truncation: {:?}",
            trace.truncated
        );
        assert_eq!(
            trace.events.len() as u64,
            stats.persisted,
            "binary file holds exactly the persisted events"
        );
        binary::convert(&trace, Some(&jsonl_path), Some(&chrome_path))
            .expect("convert binary sweep trace");
    }
    let text = std::fs::read_to_string(&jsonl_path).expect("read sweep trace back");
    let (stream_header, events) = read_jsonl_events(&text).expect("sweep trace parses");
    assert_eq!(stream_header.format, "jsonl");
    if binary_sink {
        assert!(
            stream_header
                .meta
                .iter()
                .any(|(k, v)| k == "converted_from" && v == "binary"),
            "converted trace must carry its provenance stamp"
        );
    }
    assert_eq!(
        events.len() as u64,
        stats.persisted,
        "streamed file holds exactly the persisted events"
    );
    if nodes >= SWEEP_NODES && tasks >= SWEEP_TASKS {
        assert!(
            (ring_len as u64) < stats.persisted,
            "expected the ring ({ring_len} events) to wrap below the streamed {} at full scale",
            stats.persisted
        );
    }

    // The point of X9: the streamed artifact must hold the *complete*
    // wakeup record — the early events the wrapping ring loses first —
    // even if the later task torrent was shed. From those spans the §5.1
    // agreement check runs against the on-disk file: mean wait-for-config
    // plus mean DVE boot lands inside the [I/β, 2I/β] envelope around
    // W = 1.5·I/β.
    let wait_durs = span_durations_us(&events, Phase::WakeupWait);
    let boot_durs = span_durations_us(&events, Phase::DveBoot);
    assert!(
        wait_durs.len() as u64 >= target / 2 && boot_durs.len() as u64 >= target / 2,
        "join-wave spans must survive streaming (got {} wait / {} boot pairs for target {target})",
        wait_durs.len(),
        boot_durs.len()
    );
    let wait_mean = mean_secs(&wait_durs);
    let boot_mean = mean_secs(&boot_durs);
    let measured = wait_mean + boot_mean;
    let (w_best, w_mean, w_worst) = wakeup_envelope(image, beta);
    assert!(
        measured >= 0.9 * w_best.as_secs_f64() && measured <= 1.1 * w_worst.as_secs_f64(),
        "streamed-trace wakeup {measured:.1}s outside the [{:.1}s, {:.1}s] envelope",
        w_best.as_secs_f64(),
        w_worst.as_secs_f64()
    );

    println!("  makespan        : {}", report.makespan);
    println!("  wall clock      : {:.1}s", wall.as_secs_f64());
    let dropped_pct = if stats.emitted == 0 {
        0.0
    } else {
        100.0 * stats.dropped as f64 / stats.emitted as f64
    };
    println!(
        "  streamed        : {} emitted, {} persisted, {} dropped ({dropped_pct:.1}%), {} flushes ({bytes} bytes)",
        stats.emitted, stats.persisted, stats.dropped, stats.flushes
    );
    println!("  ring snapshot   : {ring_len} events (capacity-bounded)");
    println!(
        "  wakeup (streamed trace): measured {measured:.1}s (wait {wait_mean:.1}s + boot {boot_mean:.1}s over {} joins) vs W = 1.5·I/β = {:.1}s",
        boot_durs.len(),
        w_mean.as_secs_f64()
    );
    if binary_sink {
        println!(
            "  convert         : {} B binary -> {} events re-emitted as JSONL + Chrome",
            bytes,
            events.len()
        );
    }
    if keep_traces() {
        println!(
            "  traces kept     : {} + {}",
            jsonl_path.display(),
            chrome_path.display()
        );
    } else {
        let _ = std::fs::remove_file(&jsonl_path);
        let _ = std::fs::remove_file(&chrome_path);
        let _ = std::fs::remove_file(&bin_path);
    }

    serde_json::json!({
        "scenario": scenario,
        "nodes": nodes,
        "target": target,
        "tasks": tasks,
        "makespan_secs": report.makespan.as_secs_f64(),
        "wall_secs": wall.as_secs_f64(),
        "emitted": stats.emitted,
        "persisted": stats.persisted,
        "dropped": stats.dropped,
        "dropped_pct": dropped_pct,
        "flushes": stats.flushes,
        "stream_bytes": bytes,
        "ring_events": ring_len,
        "wakeup_pairs": boot_durs.len(),
        "wakeup_measured_secs": measured,
        "wakeup_model_secs": w_mean.as_secs_f64(),
    })
}

fn main() {
    header("X8 — live headend soak: throughput vs shard count");
    println!(
        "{NODES} receiver threads, {TASKS} tasks, dispatch {DISPATCH}, batch {BATCH}, best of {REPS}\n"
    );

    let (baseline, _) = soak_best(HeadendMode::SingleLoop);
    let mut rows = vec![baseline.clone()];
    let mut eight_shard: Option<(Row, Telemetry)> = None;
    for shards in [1usize, 2, 4, 8] {
        let (row, tele) = soak_best(HeadendMode::Sharded {
            shards,
            dispatch: DISPATCH,
            batch: BATCH,
        });
        if shards == 8 {
            eight_shard = Some((row.clone(), tele));
        }
        rows.push(row);
    }

    println!("  headend          shards  makespan   tasks/s   vs baseline");
    for row in &rows {
        println!(
            "  {:<15} {:>7} {:>8.3}s {:>9.0}   {:>6.2}x",
            row.mode,
            row.shards,
            row.makespan_secs,
            row.throughput_tasks_per_sec,
            row.throughput_tasks_per_sec / baseline.throughput_tasks_per_sec
        );
    }

    let (best8, tele8) = eight_shard.expect("8-shard config ran");
    let speedup = best8.throughput_tasks_per_sec / baseline.throughput_tasks_per_sec;
    println!("\n  8-shard speedup over single-loop: {speedup:.2}x");

    let phases = tele8.phase_breakdown();
    println!("\n  per-phase breakdown (8 shards):");
    println!("    phase            count      mean       p99");
    for (label, s) in &phases {
        println!(
            "    {label:<15} {:>6} {:>9.1}µs {:>9.1}µs",
            s.count,
            s.mean * 1e6,
            s.p99 * 1e6
        );
    }

    // Shape checks: every configuration accounted for every task, and the
    // sharded headend at 8 shards clears 2x the single-loop baseline.
    for row in &rows {
        assert_eq!(
            row.tasks_unaccounted, 0,
            "{} ({} shards): tasks leaked",
            row.mode, row.shards
        );
    }
    assert!(
        speedup >= 2.0,
        "8-shard throughput {:.0} is below 2x the single-loop baseline {:.0}",
        best8.throughput_tasks_per_sec,
        baseline.throughput_tasks_per_sec
    );

    // One more 8-shard run, this time streaming the full event record to
    // disk; the wakeup summary below comes from that artifact, not the
    // (capacity-bounded) ring.
    let (stream_row, stream_info, streamed_events) = streamed_soak();
    assert_eq!(stream_row.tasks, TASKS);

    let sweep = streamed_sweep(false);
    let sweep_binary = streamed_sweep(true);
    assert_eq!(
        sweep_binary["dropped"].as_u64(),
        Some(0),
        "X11 summary must record zero drops"
    );

    write_artifact("soak", &rows);
    write_artifact(
        "soak_stream",
        &serde_json::json!({ "x8": stream_info, "x9": sweep, "x11": sweep_binary }),
    );
    let run = RunInfo::new("soak", SEED);
    let metrics = serde_json::json!({
        "wakeup_latency": wakeup_summary(&streamed_events),
        "joins": tele8.phase_events(Phase::PnaAccept),
        "tasks_completed": best8.tasks,
        "control_deliveries": tele8.phase_events(Phase::CarouselPublish),
        "heartbeats_delivered": tele8.phase_events(Phase::Heartbeat),
        "direct_resets": tele8.phase_events(Phase::DirectReset),
        "tasks_orphaned": best8.tasks_unaccounted,
        "requeues": best8.requeues,
        "task_fetch_retries": tele8.phase_events(Phase::Retry),
        "fetch_aborts": 0,
        "faults": {},
        "soak": rows,
        "stream": stream_info,
        "stream_sweep": sweep,
        "stream_sweep_binary": sweep_binary,
    });
    write_metrics("soak", &run, &metrics, &phases);
}
