//! Validates every `results/*.metrics.json` artifact against the
//! checked-in schema `scripts/metrics.schema.json`, plus any streamed
//! trace artifacts the sink layer produced: `*.trace.jsonl` files must
//! start with a well-formed stream header followed by parseable event
//! lines (a bounded sample), `*.stream.json` files must be valid
//! Chrome `trace_event` documents stamped with `otherData.oddci_stream`,
//! and `*.trace.bin` files must carry the binary trace magic, a
//! supported format version, and a complete phase label table.
//!
//! The validator implements the JSON Schema subset the schema actually
//! uses — `type`, `properties`, `required`, `additionalProperties`
//! (boolean) and `items` — so the repository stays dependency-free while
//! CI still refuses malformed or mis-stamped artifacts.
//!
//! ```text
//! cargo run -p oddci-bench --bin schema_check [-- schema.json dir]
//! ```

use serde_json::Value;
use std::path::{Path, PathBuf};

/// How many event lines of a `.trace.jsonl` file are parsed per file.
/// Streamed sweeps reach ~1 M lines; checking a prefix keeps the gate
/// fast while still catching truncated writes and format drift.
const JSONL_SAMPLE_LINES: usize = 4096;

/// Artifacts the results directory must *contain*, not merely validate
/// when present: the durability (X12) and elasticity (X13) runs are
/// load-bearing evidence, so a sweep that silently skipped them must
/// fail the gate instead of passing on whatever files remain.
const REQUIRED_ARTIFACTS: &[&str] = &[
    "failover.metrics.json",
    "autoscale.json",
    "autoscale.metrics.json",
];

/// Required artifact names absent from `present` (bare file names).
fn missing_required(present: &[String]) -> Vec<&'static str> {
    REQUIRED_ARTIFACTS
        .iter()
        .copied()
        .filter(|required| !present.iter().any(|name| name == required))
        .collect()
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn matches_type(v: &Value, ty: &str) -> bool {
    match ty {
        "object" => matches!(v, Value::Object(_)),
        "array" => matches!(v, Value::Array(_)),
        "string" => matches!(v, Value::String(_)),
        "boolean" => matches!(v, Value::Bool(_)),
        "null" => matches!(v, Value::Null),
        "number" => matches!(v, Value::Number(_)),
        // JSON Schema "integer": any number with zero fractional part.
        "integer" => v.as_i64().is_some() || v.as_u64().is_some(),
        _ => false,
    }
}

/// Recursively checks `value` against `schema`, appending one message per
/// violation to `errors` (`at` is the JSON-pointer-ish location).
fn validate(value: &Value, schema: &Value, at: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type").and_then(Value::as_str) {
        if !matches_type(value, ty) {
            errors.push(format!("{at}: expected {ty}, found {}", type_name(value)));
            return;
        }
    }
    if let Value::Object(entries) = value {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for name in required.iter().filter_map(Value::as_str) {
                if !entries.iter().any(|(k, _)| k == name) {
                    errors.push(format!("{at}: missing required field `{name}`"));
                }
            }
        }
        let props = schema.get("properties");
        if let Some(Value::Object(prop_schemas)) = props {
            for (key, sub) in prop_schemas {
                if let Some(child) = entries.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    validate(child, sub, &format!("{at}/{key}"), errors);
                }
            }
            if schema.get("additionalProperties").and_then(Value::as_bool) == Some(false) {
                for (key, _) in entries {
                    if !prop_schemas.iter().any(|(k, _)| k == key) {
                        errors.push(format!("{at}: unexpected field `{key}`"));
                    }
                }
            }
        }
    }
    if let (Value::Array(items), Some(item_schema)) = (value, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate(item, item_schema, &format!("{at}/{i}"), errors);
        }
    }
}

fn check_file(path: &Path, schema: &Value) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("invalid JSON: {e:?}")],
    };
    let mut errors = Vec::new();
    validate(&doc, schema, "", &mut errors);
    errors
}

/// Validates a streamed JSONL trace: header line with `oddci_stream`
/// version stamp, `format`/`clock` strings, then event lines that
/// deserialize as telemetry events (first [`JSONL_SAMPLE_LINES`] only).
fn validate_jsonl_stream(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return vec!["empty stream file".into()];
    };
    match serde_json::from_str::<Value>(first) {
        Ok(header) => {
            if header.get("oddci_stream").and_then(Value::as_u64).is_none() {
                errors.push("header: missing integer `oddci_stream` stamp".into());
            }
            for key in ["format", "clock"] {
                if header.get(key).and_then(Value::as_str).is_none() {
                    errors.push(format!("header: missing string `{key}`"));
                }
            }
        }
        Err(e) => errors.push(format!("header: invalid JSON: {e:?}")),
    }
    for (i, line) in lines.take(JSONL_SAMPLE_LINES).enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Err(e) = serde_json::from_str::<oddci_telemetry::Event>(line) {
            errors.push(format!("line {}: not a telemetry event: {e:?}", i + 2));
            break;
        }
    }
    errors
}

/// Validates a streamed Chrome trace: a JSON document with a
/// `traceEvents` array and the `otherData.oddci_stream` stamp.
fn validate_chrome_stream(text: &str) -> Vec<String> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return vec![format!("invalid JSON: {e:?}")],
    };
    let mut errors = Vec::new();
    if doc.get("traceEvents").and_then(Value::as_array).is_none() {
        errors.push("missing `traceEvents` array".into());
    }
    if doc
        .get("otherData")
        .and_then(|d| d.get("oddci_stream"))
        .is_none()
    {
        errors.push("missing `otherData.oddci_stream` stamp".into());
    }
    errors
}

/// Validates a binary trace file header: `ODCB` magic, a format version
/// this build understands, and a phase table covering every phase a
/// record tag could reference. The body is not replayed here — the
/// convert round-trip in CI exercises that path end to end.
fn validate_binary_trace(bytes: &[u8]) -> Vec<String> {
    let (header, body_start) = match oddci_telemetry::binary::decode_header(bytes) {
        Ok(h) => h,
        Err(e) => return vec![format!("bad binary header: {e}")],
    };
    let mut errors = Vec::new();
    if header.version != oddci_telemetry::binary::BINARY_VERSION {
        errors.push(format!(
            "unsupported binary version {} (expected {})",
            header.version,
            oddci_telemetry::binary::BINARY_VERSION
        ));
    }
    if header.labels.is_empty() {
        errors.push("empty phase label table".into());
    }
    if header.lanes == 0 {
        errors.push("header claims zero writer lanes".into());
    }
    if body_start > bytes.len() {
        errors.push("header extends past end of file".into());
    }
    errors
}

fn check_stream_file(path: &Path) -> Vec<String> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.ends_with(".trace.bin") {
        return match std::fs::read(path) {
            Ok(bytes) => validate_binary_trace(&bytes),
            Err(e) => vec![format!("unreadable: {e}")],
        };
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    if name.ends_with(".trace.jsonl") {
        validate_jsonl_stream(&text)
    } else {
        validate_chrome_stream(&text)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let schema_path = argv
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("scripts/metrics.schema.json"));
    let results_dir = argv
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(oddci_bench::results_dir);

    let schema: Value = serde_json::from_str(
        &std::fs::read_to_string(&schema_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", schema_path.display())),
    )
    .expect("schema is valid JSON");

    let mut files: Vec<PathBuf> = std::fs::read_dir(&results_dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", results_dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".metrics.json"))
        })
        .collect();
    files.sort();

    if files.is_empty() {
        println!(
            "schema_check: no *.metrics.json files under {}",
            results_dir.display()
        );
        std::process::exit(1);
    }

    // Streamed-trace artifacts are optional (the soak bench deletes the
    // large ones after validating them); check whichever are present.
    let mut streams: Vec<PathBuf> = std::fs::read_dir(&results_dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", results_dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.ends_with(".trace.jsonl")
                    || n.ends_with(".stream.json")
                    || n.ends_with(".trace.bin")
            })
        })
        .collect();
    streams.sort();

    let mut failed = false;
    let present: Vec<String> = std::fs::read_dir(&results_dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", results_dir.display()))
        .filter_map(|entry| entry.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .collect();
    for name in missing_required(&present) {
        failed = true;
        println!("FAIL  {}", results_dir.join(name).display());
        println!("      required artifact is missing");
    }
    for file in &files {
        let errors = check_file(file, &schema);
        if errors.is_empty() {
            println!("ok    {}", file.display());
        } else {
            failed = true;
            println!("FAIL  {}", file.display());
            for e in errors {
                println!("      {e}");
            }
        }
    }
    for file in &streams {
        let errors = check_stream_file(file);
        if errors.is_empty() {
            println!("ok    {}", file.display());
        } else {
            failed = true;
            println!("FAIL  {}", file.display());
            for e in errors {
                println!("      {e}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "schema_check: {} artifact(s) valid ({} streamed)",
        files.len() + streams.len(),
        streams.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Value {
        serde_json::from_str(include_str!("../../../../scripts/metrics.schema.json")).unwrap()
    }

    #[test]
    fn required_artifacts_must_exist() {
        // A full sweep leaves nothing missing.
        let full: Vec<String> = REQUIRED_ARTIFACTS
            .iter()
            .map(|s| s.to_string())
            .chain(["chaos.metrics.json".to_string()])
            .collect();
        assert!(missing_required(&full).is_empty());

        // Dropping the durability run must be flagged even though every
        // *present* file would validate — required, not pass-if-present.
        let partial: Vec<String> = full
            .iter()
            .filter(|name| *name != "failover.metrics.json")
            .cloned()
            .collect();
        assert_eq!(missing_required(&partial), vec!["failover.metrics.json"]);

        // An empty results dir misses the whole list, in declared order.
        assert_eq!(missing_required(&[]), REQUIRED_ARTIFACTS.to_vec());
    }

    #[test]
    fn stamped_envelope_passes() {
        let doc = serde_json::json!({
            "run": {"scenario": "chaos", "seed": 2024, "git": "abc1234"},
            "metrics": {
                "wakeup_latency": {"count": 1, "mean": 2.0, "std_dev": 0.0, "min": 2.0, "max": 2.0},
                "joins": 1, "tasks_completed": 1, "control_deliveries": 1,
                "heartbeats_delivered": 1, "direct_resets": 0, "tasks_orphaned": 0,
                "requeues": 0, "task_fetch_retries": 0, "fetch_aborts": 0,
                "faults": {}
            },
            "phases": {}
        });
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn missing_stamp_and_wrong_types_fail() {
        let doc = serde_json::json!({
            "metrics": {"joins": "three"},
            "phases": {}
        });
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing required field `run`")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("/metrics/joins")),
            "{errors:?}"
        );
    }

    #[test]
    fn unexpected_top_level_field_fails() {
        let doc = serde_json::json!({"run": {}, "metrics": {}, "phases": {}, "extra": 1});
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(errors.iter().any(|e| e.contains("`extra`")), "{errors:?}");
    }

    #[test]
    fn well_formed_jsonl_stream_passes() {
        let text = "{\"oddci_stream\":1,\"format\":\"jsonl\",\"clock\":\"us\",\"meta\":{}}\n\
            {\"ts_us\":10,\"phase\":\"DveBoot\",\"kind\":\"Begin\",\"track\":3,\"scope\":0}\n\
            {\"ts_us\":20,\"phase\":\"DveBoot\",\"kind\":\"End\",\"track\":3,\"scope\":0}\n";
        assert!(validate_jsonl_stream(text).is_empty());
    }

    #[test]
    fn jsonl_stream_without_stamp_or_with_bad_event_fails() {
        let no_stamp = "{\"format\":\"jsonl\",\"clock\":\"us\"}\n";
        assert!(validate_jsonl_stream(no_stamp)
            .iter()
            .any(|e| e.contains("oddci_stream")));
        let bad_event = "{\"oddci_stream\":1,\"format\":\"jsonl\",\"clock\":\"us\"}\n\
            {\"ts_us\":\"soon\"}\n";
        assert!(validate_jsonl_stream(bad_event)
            .iter()
            .any(|e| e.contains("line 2")));
        assert!(validate_jsonl_stream("")
            .iter()
            .any(|e| e.contains("empty")));
    }

    #[test]
    fn binary_trace_header_passes_and_corruption_fails() {
        let bytes = oddci_telemetry::binary::encode_header(&[("scenario".into(), "t".into())], 2);
        assert!(validate_binary_trace(&bytes).is_empty());

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(validate_binary_trace(&wrong_magic)
            .iter()
            .any(|e| e.contains("bad binary header")));

        // Bump the version field (little-endian u16 right after the magic).
        let mut wrong_version = bytes;
        wrong_version[4] = wrong_version[4].wrapping_add(1);
        let errors = validate_binary_trace(&wrong_version);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("version") || e.contains("bad binary header")),
            "{errors:?}"
        );
    }

    #[test]
    fn chrome_stream_requires_events_and_stamp() {
        let good = r#"{"displayTimeUnit":"ms","otherData":{"oddci_stream":1},"traceEvents":[]}"#;
        assert!(validate_chrome_stream(good).is_empty());
        let errors = validate_chrome_stream(r#"{"traceEvents":{}}"#);
        assert!(errors.iter().any(|e| e.contains("traceEvents")));
        assert!(errors.iter().any(|e| e.contains("oddci_stream")));
    }
}
