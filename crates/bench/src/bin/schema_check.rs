//! Validates every `results/*.metrics.json` artifact against the
//! checked-in schema `scripts/metrics.schema.json`.
//!
//! The validator implements the JSON Schema subset the schema actually
//! uses — `type`, `properties`, `required`, `additionalProperties`
//! (boolean) and `items` — so the repository stays dependency-free while
//! CI still refuses malformed or mis-stamped artifacts.
//!
//! ```text
//! cargo run -p oddci-bench --bin schema_check [-- schema.json dir]
//! ```

use serde_json::Value;
use std::path::{Path, PathBuf};

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn matches_type(v: &Value, ty: &str) -> bool {
    match ty {
        "object" => matches!(v, Value::Object(_)),
        "array" => matches!(v, Value::Array(_)),
        "string" => matches!(v, Value::String(_)),
        "boolean" => matches!(v, Value::Bool(_)),
        "null" => matches!(v, Value::Null),
        "number" => matches!(v, Value::Number(_)),
        // JSON Schema "integer": any number with zero fractional part.
        "integer" => v.as_i64().is_some() || v.as_u64().is_some(),
        _ => false,
    }
}

/// Recursively checks `value` against `schema`, appending one message per
/// violation to `errors` (`at` is the JSON-pointer-ish location).
fn validate(value: &Value, schema: &Value, at: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type").and_then(Value::as_str) {
        if !matches_type(value, ty) {
            errors.push(format!("{at}: expected {ty}, found {}", type_name(value)));
            return;
        }
    }
    if let Value::Object(entries) = value {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for name in required.iter().filter_map(Value::as_str) {
                if !entries.iter().any(|(k, _)| k == name) {
                    errors.push(format!("{at}: missing required field `{name}`"));
                }
            }
        }
        let props = schema.get("properties");
        if let Some(Value::Object(prop_schemas)) = props {
            for (key, sub) in prop_schemas {
                if let Some(child) = entries.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    validate(child, sub, &format!("{at}/{key}"), errors);
                }
            }
            if schema.get("additionalProperties").and_then(Value::as_bool) == Some(false) {
                for (key, _) in entries {
                    if !prop_schemas.iter().any(|(k, _)| k == key) {
                        errors.push(format!("{at}: unexpected field `{key}`"));
                    }
                }
            }
        }
    }
    if let (Value::Array(items), Some(item_schema)) = (value, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate(item, item_schema, &format!("{at}/{i}"), errors);
        }
    }
}

fn check_file(path: &Path, schema: &Value) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("invalid JSON: {e:?}")],
    };
    let mut errors = Vec::new();
    validate(&doc, schema, "", &mut errors);
    errors
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let schema_path = argv
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("scripts/metrics.schema.json"));
    let results_dir = argv
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(oddci_bench::results_dir);

    let schema: Value = serde_json::from_str(
        &std::fs::read_to_string(&schema_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", schema_path.display())),
    )
    .expect("schema is valid JSON");

    let mut files: Vec<PathBuf> = std::fs::read_dir(&results_dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", results_dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".metrics.json"))
        })
        .collect();
    files.sort();

    if files.is_empty() {
        println!(
            "schema_check: no *.metrics.json files under {}",
            results_dir.display()
        );
        std::process::exit(1);
    }

    let mut failed = false;
    for file in &files {
        let errors = check_file(file, &schema);
        if errors.is_empty() {
            println!("ok    {}", file.display());
        } else {
            failed = true;
            println!("FAIL  {}", file.display());
            for e in errors {
                println!("      {e}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("schema_check: {} artifact(s) valid", files.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Value {
        serde_json::from_str(include_str!("../../../../scripts/metrics.schema.json")).unwrap()
    }

    #[test]
    fn stamped_envelope_passes() {
        let doc = serde_json::json!({
            "run": {"scenario": "chaos", "seed": 2024, "git": "abc1234"},
            "metrics": {
                "wakeup_latency": {"count": 1, "mean": 2.0, "std_dev": 0.0, "min": 2.0, "max": 2.0},
                "joins": 1, "tasks_completed": 1, "control_deliveries": 1,
                "heartbeats_delivered": 1, "direct_resets": 0, "tasks_orphaned": 0,
                "requeues": 0, "task_fetch_retries": 0, "fetch_aborts": 0,
                "faults": {}
            },
            "phases": {}
        });
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn missing_stamp_and_wrong_types_fail() {
        let doc = serde_json::json!({
            "metrics": {"joins": "three"},
            "phases": {}
        });
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing required field `run`")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("/metrics/joins")),
            "{errors:?}"
        );
    }

    #[test]
    fn unexpected_top_level_field_fails() {
        let doc = serde_json::json!({"run": {}, "metrics": {}, "phases": {}, "extra": 1});
        let mut errors = Vec::new();
        validate(&doc, &schema(), "", &mut errors);
        assert!(errors.iter().any(|e| e.contains("`extra`")), "{errors:?}");
    }
}
