//! Experiment F6 — Figure 6: efficiency vs suitability Φ for n/N ∈
//! {1, 10, 100, 1000}, (s+r) = 1 KB, I = 10 MB, β = 1 Mbps, δ = 150 Kbps.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin figure6 [--sim]
//! ```
//!
//! Prints the analytical series (the figure itself); `--sim` adds
//! discrete-event simulation points at selected Φ values for
//! cross-validation (slower).

use oddci_analytics::efficiency::{efficiency_curve, log_grid, phi_reaching};
use oddci_analytics::InstanceParams;
use oddci_bench::{header, write_artifact};
use oddci_core::{World, WorldConfig};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::{JobGenerator, JobProfile};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    n_over_big_n: f64,
    points: Vec<(f64, f64)>,
    phi_at_e90: Option<f64>,
    sim_points: Vec<(f64, f64)>,
}

fn main() {
    let with_sim = std::env::args().any(|a| a == "--sim");
    header("Figure 6 — efficiency of an OddCI-DTV instance vs suitability Φ");
    println!("(s+r) = 1 KB, I = 10 MB, β = 1 Mbps, δ = 150 Kbps, N = 1000");
    println!();

    let params = InstanceParams::paper(1_000);
    let image = DataSize::from_megabytes(10);
    let moved = DataSize::from_bytes(1_000);
    let ratios = [1.0, 10.0, 100.0, 1_000.0];
    let grid = log_grid(1.0, 1e5, 21);

    print!("{:>10}", "phi");
    for r in ratios {
        print!(" {:>12}", format!("n/N={r}"));
    }
    println!();

    let curves: Vec<_> = ratios
        .iter()
        .map(|&r| efficiency_curve(&grid, r, image, moved, &params))
        .collect();
    for (i, &phi) in grid.iter().enumerate() {
        print!("{phi:>10.0}");
        for c in &curves {
            print!(" {:>12.4}", c[i].efficiency);
        }
        println!();
    }

    // Paper claims to verify.
    println!();
    let fine = log_grid(1.0, 1e7, 400);
    let mut series = Vec::new();
    for (&r, _) in ratios.iter().zip(&curves) {
        let c = efficiency_curve(&fine, r, image, moved, &params);
        let phi90 = phi_reaching(&c, 0.9);
        println!(
            "n/N={r:<6}  E=0.9 reached at phi = {}",
            phi90.map_or("never (within 1e7)".into(), |p| format!("{p:.0}"))
        );
        let sim_points = if with_sim {
            simulate_points(r, image, moved, &params)
        } else {
            vec![]
        };
        series.push(Series {
            n_over_big_n: r,
            points: efficiency_curve(&grid, r, image, moved, &params)
                .iter()
                .map(|p| (p.phi, p.efficiency))
                .collect(),
            phi_at_e90: phi90,
            sim_points,
        });
    }

    // Shape assertions (what "reproduced" means for this figure).
    let c100 = efficiency_curve(&fine, 100.0, image, moved, &params);
    let phi90 = phi_reaching(&c100, 0.9).expect("n/N=100 reaches E=0.9");
    assert!(
        phi90 < 1_000.0,
        "paper: ratio 100 suffices well before phi=1000"
    );
    for c in &series {
        let e: Vec<f64> = c.points.iter().map(|&(_, e)| e).collect();
        assert!(
            e.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "monotone in phi"
        );
    }
    println!();
    println!("shape checks pass: efficiency is monotone in phi; n/N=100 reaches");
    println!("E=0.9 at phi={phi90:.0} (<1000), matching the paper's reading of Figure 6.");

    if with_sim {
        println!();
        println!("simulation cross-validation points are in the artifact (sim_points).");
    }
    write_artifact("figure6", &series);
}

/// Runs the full world at a few Φ values and measures efficiency.
fn simulate_points(
    ratio: f64,
    image: DataSize,
    moved: DataSize,
    params: &InstanceParams,
) -> Vec<(f64, f64)> {
    let target = 100u64; // smaller N for tractable event counts
    let mut out = Vec::new();
    for phi in [100.0, 1_000.0, 10_000.0] {
        let n_tasks = ((ratio * target as f64) as u64).max(1);
        let profile = JobProfile::from_suitability(image, n_tasks, moved, params.delta, phi);
        let job = JobGenerator::homogeneous(
            image,
            profile.mean_input,
            profile.mean_result,
            profile.mean_cost,
            7,
        )
        .generate(n_tasks);

        let mut cfg = WorldConfig {
            nodes: 1_000,
            ..Default::default()
        };
        cfg.policy.heartbeat.interval = SimDuration::from_secs(60);
        // Apples-to-apples with equation (2): the model's `p` is defined on
        // a *reference* (standby) set-top box, so the cross-validation
        // audience must be all-standby. (With the default 50% in-use mix,
        // efficiency saturates at 0.5 + 0.5/1.65 ≈ 0.80 instead of 1 — a
        // real effect the paper's homogeneity assumption hides; see
        // EXPERIMENTS.md.)
        cfg.in_use_fraction = 0.0;
        let mut sim = World::simulation(cfg, 1 + phi as u64);
        let request = sim.submit_job(job, target);
        if let Some(report) = sim.run_request(request, SimTime::from_secs(365 * 24 * 3600)) {
            let e = n_tasks as f64 * profile.mean_cost.as_secs_f64()
                / (report.makespan.as_secs_f64() * target as f64);
            out.push((phi, e));
        }
    }
    out
}
