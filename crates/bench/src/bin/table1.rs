//! Experiment T1 — Table I: requirement coverage per technology, with the
//! quantitative evidence behind each verdict.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin table1
//! ```

use oddci_analytics::requirements::{satisfies, Requirement, Technology};
use oddci_baselines::{all_models, standard_image, InstantiationOutcome};
use oddci_bench::{fmt_secs, header, write_artifact};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technology: String,
    scalability: bool,
    on_demand: bool,
    efficient_setup: bool,
    max_scale: u64,
    instantiation_secs: Vec<(u64, Option<f64>)>,
}

fn main() {
    header("Table I — DCI requirement coverage (paper verdicts + model evidence)");
    println!();

    // The paper's qualitative table.
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "", "scalability", "on-demand", "eff. setup"
    );
    for tech in Technology::ALL {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            tech.label(),
            tick(satisfies(tech, Requirement::ExtremelyHighScalability)),
            tick(satisfies(tech, Requirement::OnDemandInstantiation)),
            tick(satisfies(tech, Requirement::EfficientSetup)),
        );
    }

    // Quantitative evidence: pool-assembly time vs size, per model.
    println!();
    println!("Pool assembly time for a 10 MB image (— = beyond the technology's ceiling)");
    let sizes = [100u64, 10_000, 1_000_000, 100_000_000];
    print!("{:<22}", "");
    for n in sizes {
        print!(" {:>12}", group(n));
    }
    println!();

    let image = standard_image();
    let mut rows = Vec::new();
    for model in all_models() {
        print!("{:<22}", model.name());
        let mut inst = Vec::new();
        for n in sizes {
            match model.instantiate(n, image) {
                InstantiationOutcome::Ready { time } => {
                    print!(" {:>12}", fmt_secs(time.as_secs_f64()));
                    inst.push((n, Some(time.as_secs_f64())));
                }
                InstantiationOutcome::Unreachable { .. } => {
                    print!(" {:>12}", "—");
                    inst.push((n, None));
                }
            }
        }
        println!();
        rows.push(Row {
            technology: model.name().to_string(),
            scalability: model.max_scale() >= 100_000_000,
            on_demand: model.on_demand(),
            efficient_setup: model.efficient_setup(),
            max_scale: model.max_scale(),
            instantiation_secs: inst,
        });
    }

    // Consistency check: model flags must reproduce the paper's verdicts.
    for (row, tech) in rows.iter().zip(Technology::ALL) {
        assert_eq!(
            row.scalability,
            satisfies(tech, Requirement::ExtremelyHighScalability),
            "{}: scalability verdict mismatch",
            row.technology
        );
        assert_eq!(
            row.on_demand,
            satisfies(tech, Requirement::OnDemandInstantiation)
        );
        assert_eq!(
            row.efficient_setup,
            satisfies(tech, Requirement::EfficientSetup)
        );
    }
    println!();
    println!("model flags reproduce every ✓/✗ of the paper's Table I.");

    write_artifact("table1", &rows);
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn group(n: u64) -> String {
    match n {
        1_000_000.. => format!("{}M nodes", n / 1_000_000),
        1_000.. => format!("{}k nodes", n / 1_000),
        _ => format!("{n} nodes"),
    }
}
