//! Experiment X2 (extension) — heartbeat load on the Controller (§3.2's
//! deferred bottleneck question, footnote 3).
//!
//! ```text
//! cargo run --release -p oddci-bench --bin heartbeat
//! ```
//!
//! Uses the M/D/1 ingest model to map (population, heartbeat interval) to
//! Controller utilization and queueing delay, and derives the interval the
//! Controller must configure (§3.2: "the PNA must be appropriately
//! configured by the Controller") for populations up to 10⁸.

use oddci_bench::{fmt_secs, header, write_artifact};
use oddci_net::ServerCapacity;
use oddci_types::{Bandwidth, DataSize, SimDuration};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    nodes: u64,
    interval_s: u64,
    utilization: f64,
    mean_delay_s: Option<f64>,
}

fn main() {
    header("X2 — heartbeat load on the Controller (M/D/1 ingest model)");
    println!();
    // A solid 2009-class ingest tier: 50k msgs/s, 1 Gbps.
    let server = ServerCapacity::new(50_000.0, Bandwidth::from_mbps(1_000.0));
    let msg = DataSize::from_bytes(128);

    let populations = [10_000u64, 100_000, 1_000_000, 10_000_000, 100_000_000];
    let intervals = [10u64, 60, 300, 600, 3_600];

    println!("Controller: 50k msgs/s CPU, 1 Gbps ingress, 128 B heartbeats");
    println!();
    print!("{:>12}", "nodes \\ int");
    for i in intervals {
        print!(" {:>13}", fmt_secs(i as f64));
    }
    println!();

    let mut cells = Vec::new();
    for n in populations {
        print!("{n:>12}");
        for i in intervals {
            let rate = ServerCapacity::arrival_rate(n, SimDuration::from_secs(i));
            let rho = server.utilization(rate);
            let delay = server.mean_response_time(rate);
            let link = server.link_utilization(rate, msg);
            let s = match delay {
                Some(d) if link < 1.0 => {
                    format!("{:.0}%/{}", rho * 100.0, fmt_secs(d.as_secs_f64()))
                }
                _ => "OVERLOAD".into(),
            };
            print!(" {s:>13}");
            cells.push(Cell {
                nodes: n,
                interval_s: i,
                utilization: rho,
                mean_delay_s: delay.map(|d| d.as_secs_f64()).filter(|_| link < 1.0),
            });
        }
        println!();
    }

    println!();
    println!("minimum sustainable interval at 80% utilization:");
    for n in populations {
        let min = server.min_interval(n, 0.8);
        println!(
            "  {n:>12} nodes → every {:>10}",
            fmt_secs(min.as_secs_f64())
        );
    }

    // Shape checks: a million nodes at the paper-ish 60 s interval is
    // comfortable; 10⁸ nodes need interval ≳ 40 min on this tier.
    let mega = server.utilization(ServerCapacity::arrival_rate(
        1_000_000,
        SimDuration::from_secs(60),
    ));
    assert!(mega < 0.5, "1M nodes @ 60 s: rho={mega}");
    let giga = server.min_interval(100_000_000, 0.8);
    assert!(
        giga > SimDuration::from_mins(30),
        "1e8 nodes need long intervals"
    );
    println!();
    println!(
        "1M nodes heartbeat comfortably at 60 s (rho = {:.0}%); hundreds of",
        mega * 100.0
    );
    println!("millions force multi-hour intervals or a sharded Controller tier —");
    println!("quantifying the open problem the paper's footnote 3 defers.");

    write_artifact("heartbeat", &cells);
}
