//! Experiment W1 — §5.1 wakeup overhead: simulated carousel vs the closed
//! form `W = 1.5·I/β`, swept over image size and broadcast capacity.
//!
//! ```text
//! cargo run --release -p oddci-bench --bin wakeup
//! ```

use oddci_analytics::{wakeup_envelope, wakeup_mean};
use oddci_bench::{fmt_secs, header, write_artifact};
use oddci_broadcast::carousel::{CarouselFile, ObjectCarousel};
use oddci_broadcast::tsmux::TransportMux;
use oddci_types::{Bandwidth, DataSize, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    image_mb: u64,
    beta_mbps: f64,
    closed_form_mean_s: f64,
    simulated_mean_s: f64,
    simulated_min_s: f64,
    simulated_max_s: f64,
    ratio: f64,
}

fn main() {
    header("W1 — wakeup overhead: simulated carousel vs W = 1.5·I/β");
    println!();
    println!(
        "{:>8} {:>8} | {:>12} | {:>12} {:>12} {:>12} | {:>7}",
        "image", "β", "1.5·I/β", "sim mean", "sim best", "sim worst", "ratio"
    );

    let mut rows = Vec::new();
    for &image_mb in &[1u64, 2, 4, 8, 16, 32] {
        for &beta_mbps in &[1.0f64, 2.0, 4.0, 8.0] {
            let image = DataSize::from_megabytes(image_mb);
            let beta = Bandwidth::from_mbps(beta_mbps);
            let closed = wakeup_mean(image, beta).as_secs_f64();

            // Simulate 1,000 receivers attaching at uniform phases over
            // the carousel cycle (what a national audience does).
            let carousel = ObjectCarousel::new(
                TransportMux::new(beta),
                vec![
                    CarouselFile::sized("config", DataSize::from_bytes(512)),
                    CarouselFile::sized("image", image),
                ],
                SimTime::ZERO,
            );
            let cycle = carousel.cycle_duration().as_secs_f64();
            let idx = carousel.file_index("image").unwrap();
            let n = 1_000;
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut max: f64 = 0.0;
            for i in 0..n {
                let attach = SimTime::from_secs_f64(cycle * i as f64 / n as f64);
                let lat = (carousel.acquisition_complete(idx, attach) - attach).as_secs_f64();
                sum += lat;
                min = min.min(lat);
                max = max.max(lat);
            }
            let mean = sum / n as f64;
            let ratio = mean / closed;
            println!(
                "{:>6}MB {:>6}M | {:>12} | {:>12} {:>12} {:>12} | {:>7.3}",
                image_mb,
                beta_mbps,
                fmt_secs(closed),
                fmt_secs(mean),
                fmt_secs(min),
                fmt_secs(max),
                ratio
            );
            // Shape check: within TS/DSM-CC framing overhead (<6%) of 1.5·I/β.
            assert!(
                (0.99..1.10).contains(&ratio),
                "ratio {ratio} out of envelope"
            );
            rows.push(Row {
                image_mb,
                beta_mbps,
                closed_form_mean_s: closed,
                simulated_mean_s: mean,
                simulated_min_s: min,
                simulated_max_s: max,
                ratio,
            });
        }
    }

    println!();
    let (best, mean, worst) =
        wakeup_envelope(DataSize::from_megabytes(8), Bandwidth::from_mbps(1.0));
    println!("paper's §5.1 headline (8 MB @ 1 Mbps): instance setup for millions of");
    println!(
        "nodes in best {} / mean {} / worst {} — independent of N.",
        fmt_secs(best.as_secs_f64()),
        fmt_secs(mean.as_secs_f64()),
        fmt_secs(worst.as_secs_f64())
    );
    println!("(the paper quotes \"less than 64 seconds\" from the bare I/β term with");
    println!("decimal megabytes; the full carousel-average model gives the mean above.)");

    write_artifact("wakeup", &rows);
}
