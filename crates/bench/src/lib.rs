#![forbid(unsafe_code)]

//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every `cargo run -p oddci-bench --bin <exp>` binary prints a
//! human-readable table to stdout **and** writes a machine-readable JSON
//! artifact under `results/` so EXPERIMENTS.md entries are diffable
//! against re-runs.
//!
//! # Example
//!
//! ```
//! use oddci_bench::{fmt_secs, RunInfo};
//!
//! // Every artifact carries a provenance stamp:
//! let run = RunInfo::new("demo", 42);
//! assert_eq!(run.scenario, "demo");
//! assert_eq!(run.seed, 42);
//!
//! // Table cells humanize durations:
//! assert!(!fmt_secs(0.042).is_empty());
//! ```

use oddci_telemetry::HistogramSummary;
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Where experiment artifacts are written (`results/` at the workspace
/// root, or `$ODDCI_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("ODDCI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create artifact");
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    f.write_all(json.as_bytes()).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Provenance stamp carried by every `*.metrics.json` artifact, so a
/// checked-in file states which scenario/seed/revision produced it.
#[derive(Debug, Clone, Serialize)]
pub struct RunInfo {
    /// Scenario name (usually the experiment/bin name).
    pub scenario: String,
    /// Master seed of the stamped run.
    pub seed: u64,
    /// `git describe` of the producing tree, or `"unknown"` outside git.
    pub git: String,
}

impl RunInfo {
    /// Stamp for `scenario` run with `seed` at the current revision.
    pub fn new(scenario: &str, seed: u64) -> RunInfo {
        RunInfo {
            scenario: scenario.to_string(),
            seed,
            git: git_describe(),
        }
    }
}

/// `git describe --always --dirty --tags` of the working tree, or
/// `"unknown"` when git (or the repo) is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serializes a world metrics snapshot into `results/<name>.metrics.json`,
/// alongside the experiment's own `results/<name>.json` artifact. Keeping
/// the full counter set (joins, heartbeats, requeues, per-fault-class
/// counts) diffable makes regressions in the control plane's behaviour
/// visible even when the headline numbers of an experiment don't move.
///
/// The artifact is an envelope — `{"run": .., "metrics": .., "phases": ..}`
/// — validated against `scripts/metrics.schema.json` by the `schema_check`
/// bin in CI. `phases` holds the per-phase latency summaries (may be
/// empty).
pub fn write_metrics<T: Serialize>(
    name: &str,
    run: &RunInfo,
    snapshot: &T,
    phases: &[(&'static str, HistogramSummary)],
) {
    let phases_value = serde_json::Value::Object(
        phases
            .iter()
            .map(|(label, s)| {
                (
                    label.to_string(),
                    serde_json::to_value(s).expect("serialize phase summary"),
                )
            })
            .collect(),
    );
    let doc = serde_json::json!({
        "run": run,
        "metrics": serde_json::to_value(snapshot).expect("serialize metrics"),
        "phases": phases_value,
    });
    let path = results_dir().join(format!("{name}.metrics.json"));
    let mut f = std::fs::File::create(&path).expect("create metrics artifact");
    let json = serde_json::to_string_pretty(&doc).expect("serialize metrics");
    f.write_all(json.as_bytes())
        .expect("write metrics artifact");
    println!("[artifact] {}", path.display());
}

/// Formats a duration in seconds with a sensible unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 2.0 * 24.0 * 3600.0 {
        format!("{:.1}d", s / (24.0 * 3600.0))
    } else if s >= 2.0 * 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 120.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Prints a rule-of-dashes header.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(42.0), "42.0s");
        assert_eq!(fmt_secs(600.0), "10.0min");
        assert_eq!(fmt_secs(7200.0), "2.0h");
        assert_eq!(fmt_secs(3.0 * 24.0 * 3600.0), "3.0d");
    }

    #[test]
    fn artifacts_round_trip() {
        std::env::set_var(
            "ODDCI_RESULTS_DIR",
            std::env::temp_dir().join("oddci-test-results"),
        );
        write_artifact("unit-test", &serde_json::json!({"x": 1}));
        let path = results_dir().join("unit-test.json");
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back["x"], 1);
    }

    #[test]
    fn metrics_artifacts_get_their_own_file_with_run_stamp() {
        std::env::set_var(
            "ODDCI_RESULTS_DIR",
            std::env::temp_dir().join("oddci-test-results"),
        );
        let run = RunInfo::new("unit-test", 7);
        write_metrics(
            "unit-test",
            &run,
            &serde_json::json!({"requeues": 3}),
            &[("task.fetch", HistogramSummary::default())],
        );
        let path = results_dir().join("unit-test.metrics.json");
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back["metrics"]["requeues"], 3);
        assert_eq!(back["run"]["scenario"].as_str(), Some("unit-test"));
        assert_eq!(back["run"]["seed"], 7);
        assert!(back["run"]["git"].as_str().is_some());
        assert!(back["phases"]["task.fetch"]["count"].as_u64().is_some());
    }
}
