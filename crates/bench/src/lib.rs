#![forbid(unsafe_code)]

//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every `cargo run -p oddci-bench --bin <exp>` binary prints a
//! human-readable table to stdout **and** writes a machine-readable JSON
//! artifact under `results/` so EXPERIMENTS.md entries are diffable
//! against re-runs.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Where experiment artifacts are written (`results/` at the workspace
/// root, or `$ODDCI_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("ODDCI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create artifact");
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    f.write_all(json.as_bytes()).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Serializes a world metrics snapshot into `results/<name>.metrics.json`,
/// alongside the experiment's own `results/<name>.json` artifact. Keeping
/// the full counter set (joins, heartbeats, requeues, per-fault-class
/// counts) diffable makes regressions in the control plane's behaviour
/// visible even when the headline numbers of an experiment don't move.
pub fn write_metrics<T: Serialize>(name: &str, snapshot: &T) {
    let path = results_dir().join(format!("{name}.metrics.json"));
    let mut f = std::fs::File::create(&path).expect("create metrics artifact");
    let json = serde_json::to_string_pretty(snapshot).expect("serialize metrics");
    f.write_all(json.as_bytes())
        .expect("write metrics artifact");
    println!("[artifact] {}", path.display());
}

/// Formats a duration in seconds with a sensible unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 2.0 * 24.0 * 3600.0 {
        format!("{:.1}d", s / (24.0 * 3600.0))
    } else if s >= 2.0 * 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 120.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Prints a rule-of-dashes header.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(42.0), "42.0s");
        assert_eq!(fmt_secs(600.0), "10.0min");
        assert_eq!(fmt_secs(7200.0), "2.0h");
        assert_eq!(fmt_secs(3.0 * 24.0 * 3600.0), "3.0d");
    }

    #[test]
    fn artifacts_round_trip() {
        std::env::set_var(
            "ODDCI_RESULTS_DIR",
            std::env::temp_dir().join("oddci-test-results"),
        );
        write_artifact("unit-test", &serde_json::json!({"x": 1}));
        let path = results_dir().join("unit-test.json");
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back["x"], 1);
    }

    #[test]
    fn metrics_artifacts_get_their_own_file() {
        std::env::set_var(
            "ODDCI_RESULTS_DIR",
            std::env::temp_dir().join("oddci-test-results"),
        );
        write_metrics("unit-test", &serde_json::json!({"requeues": 3}));
        let path = results_dir().join("unit-test.metrics.json");
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back["requeues"], 3);
    }
}
