//! Criterion bench: the Table 1 baseline models (they back an interactive
//! comparison, so evaluation must be trivially cheap) plus the crypto
//! primitives on the control-message hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_baselines::{all_models, standard_image};
use oddci_crypto::{HmacSha256, MessageAuthenticator, Sha256};
use std::hint::black_box;

fn model_evaluation(c: &mut Criterion) {
    let models = all_models();
    let image = standard_image();
    c.bench_function("baselines/all_models_4_sizes", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for m in &models {
                for n in [100u64, 10_000, 1_000_000, 100_000_000] {
                    if let Some(t) = m.instantiation_time(n, image) {
                        acc += t.as_secs_f64();
                    }
                }
            }
            black_box(acc)
        });
    });
}

fn crypto_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for &len in &[64usize, 4_096] {
        let data = vec![0xa5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("sha256", len), &data, |b, data| {
            b.iter(|| black_box(Sha256::digest(data)));
        });
        g.bench_with_input(BenchmarkId::new("hmac", len), &data, |b, data| {
            b.iter(|| black_box(HmacSha256::mac(b"controller-key", data)));
        });
    }
    g.finish();

    // A million PNAs each verify every control message: verify must be µs.
    let auth = MessageAuthenticator::from_key(b"controller-key");
    let msg = vec![0x42u8; 60];
    let tag = auth.sign(&msg);
    c.bench_function("crypto/verify_control_message", |b| {
        b.iter(|| black_box(auth.verify(&msg, &tag)));
    });
}

criterion_group!(benches, model_evaluation, crypto_hot_path);
criterion_main!(benches);
