//! Criterion bench + ablation X4: the carousel's 1.5-factor geometry.
//!
//! Measures (a) the cost of the O(1) acquisition query that lets one
//! carousel serve a million receivers, and (b) the best/mean/worst
//! acquisition latencies as the carousel's *other* content grows — the
//! ablation behind DESIGN.md §5.1: the 1.5·I/β law only holds while the
//! image dominates the cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oddci_broadcast::carousel::{CarouselFile, ObjectCarousel};
use oddci_broadcast::tsmux::TransportMux;
use oddci_types::{Bandwidth, DataSize, SimTime};
use std::hint::black_box;

fn carousel_with_payload(extra_files: usize) -> ObjectCarousel {
    let mut files = vec![
        CarouselFile::sized("config", DataSize::from_bytes(512)),
        CarouselFile::sized("image", DataSize::from_megabytes(8)),
    ];
    for i in 0..extra_files {
        files.push(CarouselFile::sized(
            format!("other-{i}"),
            DataSize::from_megabytes(1),
        ));
    }
    ObjectCarousel::new(
        TransportMux::new(Bandwidth::from_mbps(1.0)),
        files,
        SimTime::ZERO,
    )
}

fn acquisition_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("carousel/acquisition_query");
    for &extra in &[0usize, 8, 64] {
        let carousel = carousel_with_payload(extra);
        let idx = carousel.file_index("image").unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(extra),
            &carousel,
            |b, carousel| {
                let mut t = 1u64;
                b.iter(|| {
                    t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let attach = SimTime::from_micros(t % 1_000_000_000);
                    black_box(carousel.acquisition_complete(idx, attach))
                });
            },
        );
    }
    g.finish();
}

/// Not a timing bench: prints the X4 ablation table as criterion runs.
fn ablation_1_5_factor(c: &mut Criterion) {
    println!("\nX4 ablation — acquisition latency vs carousel co-tenants (image 8MB @ 1Mbps):");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>16}",
        "co-tenants", "best", "mean", "worst", "mean / (I/beta)"
    );
    let image_cycle = DataSize::from_megabytes(8)
        .transfer_time(Bandwidth::from_mbps(1.0))
        .as_secs_f64();
    for &extra in &[0usize, 2, 8, 32] {
        let carousel = carousel_with_payload(extra);
        let idx = carousel.file_index("image").unwrap();
        let best = carousel.best_acquisition(idx).as_secs_f64();
        let mean = carousel.expected_acquisition(idx).as_secs_f64();
        let worst = carousel.worst_acquisition(idx).as_secs_f64();
        println!(
            "{:>12} {:>9.1}s {:>9.1}s {:>9.1}s {:>16.2}",
            extra,
            best,
            mean,
            worst,
            mean / image_cycle
        );
    }
    println!("(0 co-tenants reproduces the paper's 1.5 factor; heavy co-tenancy dilutes it)\n");

    // Keep criterion happy with a trivial measured closure.
    c.bench_function("carousel/expected_acquisition", |b| {
        let carousel = carousel_with_payload(8);
        let idx = carousel.file_index("image").unwrap();
        b.iter(|| black_box(carousel.expected_acquisition(idx)));
    });
}

criterion_group!(benches, acquisition_query, ablation_1_5_factor);
criterion_main!(benches);
