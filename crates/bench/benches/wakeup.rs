//! Criterion bench: full-world instance formation (the W1 experiment's
//! engine cost) — how long the *simulator* takes to form instances at
//! growing audience sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_core::{World, WorldConfig};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use std::hint::black_box;

fn instance_formation(c: &mut Criterion) {
    let mut g = c.benchmark_group("world/instance_formation");
    g.sample_size(10);
    for &nodes in &[1_000u64, 10_000] {
        g.throughput(Throughput::Elements(nodes));
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut cfg = WorldConfig::default();
                cfg.nodes = nodes;
                cfg.policy.heartbeat.interval = SimDuration::from_secs(60);
                let job = JobGenerator::homogeneous(
                    DataSize::from_megabytes(4),
                    DataSize::from_bytes(100),
                    DataSize::from_bytes(100),
                    SimDuration::from_secs(3_600),
                    1,
                )
                .generate(nodes);
                let mut sim = World::simulation(cfg, 11);
                let _req = sim.submit_job(job, nodes / 10);
                // Simulate through wakeup + formation (first 10 minutes).
                sim.run_until(SimTime::from_secs(600));
                black_box(sim.events_processed())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, instance_formation);
criterion_main!(benches);
