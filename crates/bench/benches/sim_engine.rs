//! Criterion bench: raw discrete-event engine throughput.
//!
//! The whole evaluation stands on the simulator, so its event throughput
//! is the reproduction's enabling number (millions of PNAs need millions
//! of events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_sim::{Context, EventQueue, Model, Simulator};
use oddci_types::{SimDuration, SimTime};
use std::hint::black_box;

struct Relay {
    remaining: u64,
}

impl Model for Relay {
    type Event = u32;
    fn handle(&mut self, ev: u32, ctx: &mut Context<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_after(SimDuration::from_micros(u64::from(ev % 97) + 1), ev ^ 0x5a);
        }
    }
}

fn engine_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine/chain");
    for &events in &[10_000u64, 100_000] {
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::from_parameter(events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut sim = Simulator::new(Relay { remaining: events }, 7);
                    sim.schedule_at(SimTime::ZERO, 1);
                    black_box(sim.run())
                });
            },
        );
    }
    g.finish();
}

fn queue_mixed_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine/queue");
    for &n in &[1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                let mut x: u64 = 0x243f6a8885a308d3;
                for i in 0..n {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.push(SimTime::from_micros(x % 1_000_000), i as u32);
                }
                let mut acc = 0u64;
                while let Some((t, _)) = q.pop() {
                    acc = acc.wrapping_add(t.as_micros());
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, engine_chain, queue_mixed_ops);
criterion_main!(benches);
