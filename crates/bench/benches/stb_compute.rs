//! Criterion bench: the alignment kernel (the live runtime's "BLAST") and
//! the calibrated compute-model conversions behind Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_receiver::compute::{ComputeModel, DeviceClass, UsageMode};
use oddci_types::SimDuration;
use oddci_workload::alignment::{random_sequence, smith_waterman, BlastSearch, Scoring};
use std::hint::black_box;

fn smith_waterman_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment/smith_waterman");
    for &(qa, qb) in &[(64usize, 256usize), (128, 1024), (256, 4096)] {
        let a = random_sequence(qa, 1);
        let b_seq = random_sequence(qb, 2);
        g.throughput(Throughput::Elements((qa * qb) as u64)); // DP cells
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{qa}x{qb}")),
            &(a, b_seq),
            |bch, (a, b_seq)| {
                bch.iter(|| black_box(smith_waterman(a, b_seq, Scoring::default())));
            },
        );
    }
    g.finish();
}

fn blast_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment/seed_and_extend");
    for &db_len in &[50_000usize, 200_000] {
        let db = random_sequence(db_len, 3);
        let idx = BlastSearch::index(db, 11, Scoring::default());
        let query = random_sequence(200, 4);
        g.throughput(Throughput::Bytes(db_len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(db_len), &idx, |b, idx| {
            b.iter(|| black_box(idx.search(&query, 64, 14)));
        });
    }
    g.finish();
}

fn index_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment/index_build");
    for &db_len in &[50_000usize, 200_000] {
        let db = random_sequence(db_len, 5);
        g.throughput(Throughput::Bytes(db_len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(db_len), &db, |b, db| {
            b.iter(|| black_box(BlastSearch::index(db.clone(), 11, Scoring::default())));
        });
    }
    g.finish();
}

fn compute_model_conversion(c: &mut Criterion) {
    let model = ComputeModel::paper();
    c.bench_function("compute_model/convert", |b| {
        let t = SimDuration::from_secs(42);
        b.iter(|| {
            black_box(model.convert(
                t,
                (DeviceClass::ReferencePc, UsageMode::InUse),
                (DeviceClass::SetTopBox, UsageMode::Standby),
            ))
        });
    });
}

criterion_group!(
    benches,
    smith_waterman_cells,
    blast_search,
    index_build,
    compute_model_conversion
);
criterion_main!(benches);
