//! Criterion bench: the Figure 6/7 analytics pipeline (curve generation
//! must be cheap enough for interactive exploration) and one end-to-end
//! simulated efficiency measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_analytics::efficiency::{efficiency_curve, log_grid};
use oddci_analytics::InstanceParams;
use oddci_core::{World, WorldConfig};
use oddci_types::{DataSize, SimDuration, SimTime};
use oddci_workload::JobGenerator;
use std::hint::black_box;

fn curve_generation(c: &mut Criterion) {
    let params = InstanceParams::paper(1_000);
    let image = DataSize::from_megabytes(10);
    let moved = DataSize::from_bytes(1_000);
    let mut g = c.benchmark_group("analytics/efficiency_curve");
    for &points in &[100usize, 10_000] {
        let grid = log_grid(1.0, 1e5, points);
        g.throughput(Throughput::Elements(points as u64));
        g.bench_with_input(BenchmarkId::from_parameter(points), &grid, |b, grid| {
            b.iter(|| black_box(efficiency_curve(grid, 100.0, image, moved, &params)));
        });
    }
    g.finish();
}

fn simulated_efficiency_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("world/efficiency_point");
    g.sample_size(10);
    g.bench_function("500-node_job", |b| {
        b.iter(|| {
            let mut cfg = WorldConfig::default();
            cfg.nodes = 500;
            let job = JobGenerator::homogeneous(
                DataSize::from_megabytes(1),
                DataSize::from_bytes(500),
                DataSize::from_bytes(500),
                SimDuration::from_secs(300),
                3,
            )
            .generate(500);
            let mut sim = World::simulation(cfg, 5);
            let req = sim.submit_job(job, 100);
            black_box(sim.run_request(req, SimTime::from_secs(7 * 24 * 3600)))
        });
    });
    g.finish();
}

criterion_group!(benches, curve_generation, simulated_efficiency_point);
criterion_main!(benches);
