//! Criterion bench: churn machinery — per-node on/off process sampling
//! and the event cost of a churning world.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oddci_core::world::ChurnConfig;
use oddci_core::{World, WorldConfig};
use oddci_sim::{ChurnProcess, OnOffState};
use oddci_types::{SimDuration, SimTime};
use std::hint::black_box;

fn churn_process_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn/process");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("1000_toggles", |b| {
        b.iter(|| {
            let mut p = ChurnProcess::new(
                SimDuration::from_mins(60),
                SimDuration::from_mins(20),
                OnOffState::On,
                9,
            );
            let mut acc = 0u64;
            for _ in 0..1_000 {
                p.toggle();
                acc = acc.wrapping_add(p.next_toggle().as_micros());
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn churning_world_hour(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn/world_hour");
    g.sample_size(10);
    for &nodes in &[1_000u64, 5_000] {
        g.throughput(Throughput::Elements(nodes));
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut cfg = WorldConfig::default();
                cfg.nodes = nodes;
                cfg.churn = Some(ChurnConfig {
                    mean_on: SimDuration::from_mins(40),
                    mean_off: SimDuration::from_mins(20),
                });
                let mut sim = World::simulation(cfg, 13);
                sim.run_until(SimTime::from_secs(3_600));
                black_box(sim.events_processed())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, churn_process_sampling, churning_world_hour);
criterion_main!(benches);
