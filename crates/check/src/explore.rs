//! Deterministic schedule explorer: bounded DFS over thread interleavings.
//!
//! A scenario registers a handful of *virtual threads* (each backed by a
//! real OS thread) that interact only through the model primitives below
//! ([`ModelMutex`], [`ModelCell`], [`ModelAtomic`], [`ModelChannel`]).
//! Every primitive operation is a **yield point**: the thread parks and
//! the explorer picks who runs next. Because only one virtual thread runs
//! at a time, the set of behaviours is exactly the set of yield-point
//! interleavings — which the explorer enumerates by depth-first search,
//! bounded by [`Explorer::max_schedules`]. The seed permutes the order in
//! which choices are tried at each step, so different seeds probe
//! different corners of the schedule space first.
//!
//! Every run produces a **replayable schedule string** of the form
//! `s<seed>:<tid>.<tid>.…` — the sequence of thread ids scheduled at each
//! step. [`Explorer::replay`] re-executes exactly that interleaving, which
//! is how an explorer-discovered failure becomes a deterministic
//! regression test (see `tests/check_schedules.rs`).
//!
//! Failures come from three sources: a scenario assertion panicking, a
//! deadlock (no virtual thread runnable but not all done), or a data race
//! reported by the embedded [`RaceDetector`]. After a failure the run
//! switches to *free-run* mode so the remaining OS threads can drain and
//! be joined; a blocked thread that can never make progress in free-run
//! bails out with a sentinel panic that is swallowed.
//!
//! The scheduler below uses `std::sync` directly: it IS the instrument,
//! and routing its own turnstile through [`crate::sync`] would feed the
//! lock-order graph with scheduler-internal edges.

use crate::hb::RaceDetector;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Panic payload used by free-run bail-out; never reported as a failure.
const FREE_RUN_BAIL: &str = "oddci-check free-run bail-out";

/// Virtual thread id of the spawning (root) context for happens-before
/// fork edges.
const ROOT: usize = usize::MAX;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The order in which the DFS tries runnable threads at `step`:
/// ascending thread id, rotated by a seed-and-step-derived amount.
fn try_order(runnable: &[usize], seed: u64, step: usize) -> Vec<usize> {
    let mut order: Vec<usize> = runnable.to_vec();
    order.sort_unstable();
    if !order.is_empty() {
        let r = (splitmix64(seed ^ (step as u64)) as usize) % order.len();
        order.rotate_left(r);
    }
    order
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VState {
    Ready,
    Running,
    Blocked(u64),
    Done,
}

/// One scheduling decision: which thread ran, out of which runnable set.
#[derive(Debug, Clone)]
struct Step {
    chosen: usize,
    runnable: Vec<usize>,
}

#[derive(Debug, Default)]
struct Sched {
    states: Vec<VState>,
    names: Vec<String>,
    running: Option<usize>,
    free_run: bool,
    failure: Option<String>,
    steps: Vec<Step>,
    detector: RaceDetector,
}

/// Turnstile shared by the explorer thread and every virtual thread.
#[derive(Debug, Default)]
struct Controller {
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl Controller {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Park until scheduled (or free-run). Returns false in free-run.
    fn wait_turn(&self, me: usize) -> bool {
        let mut s = self.lock();
        loop {
            if s.free_run {
                return false;
            }
            if s.running == Some(me) {
                return true;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Hand the turn back as Ready and park for the next one.
    fn yield_now(&self, me: usize) {
        {
            let mut s = self.lock();
            if s.free_run {
                return;
            }
            if s.running == Some(me) {
                s.states[me] = VState::Ready;
                s.running = None;
                self.cv.notify_all();
            }
        }
        self.wait_turn(me);
    }

    /// Park as Blocked(resource) until some thread unblocks the resource
    /// and the scheduler picks us again.
    fn block_on(&self, me: usize, resource: u64) {
        {
            let mut s = self.lock();
            if s.free_run {
                drop(s);
                std::thread::sleep(Duration::from_millis(1));
                return;
            }
            s.states[me] = VState::Blocked(resource);
            s.running = None;
            self.cv.notify_all();
        }
        self.wait_turn(me);
    }

    /// Move every thread blocked on `resource` back to Ready.
    fn unblock(&self, resource: u64) {
        let mut s = self.lock();
        for st in &mut s.states {
            if *st == VState::Blocked(resource) {
                *st = VState::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Record a failure (first one wins) — the drive loop reacts.
    fn fail(&self, msg: String) {
        let mut s = self.lock();
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Mark a virtual thread finished and hand the turn back.
    fn finish(&self, me: usize) {
        let mut s = self.lock();
        s.states[me] = VState::Done;
        if s.running == Some(me) {
            s.running = None;
        }
        self.cv.notify_all();
    }

    /// The scheduler loop: pick runnable threads one step at a time until
    /// every thread is done, a failure is recorded, or a deadlock /
    /// step-budget exhaustion is detected.
    fn drive(&self, seed: u64, replay: &[usize], max_steps: usize) {
        loop {
            let mut s = self.lock();
            while s.running.is_some() && s.failure.is_none() && !s.free_run {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if s.failure.is_some() || s.free_run {
                s.free_run = true;
                self.cv.notify_all();
                return;
            }
            if s.states.iter().all(|st| *st == VState::Done) {
                return;
            }
            let runnable: Vec<usize> = s
                .states
                .iter()
                .enumerate()
                .filter(|(_, st)| **st == VState::Ready)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let stuck: Vec<String> = s
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| matches!(st, VState::Blocked(_)))
                    .map(|(i, _)| s.names[i].clone())
                    .collect();
                s.failure = Some(format!(
                    "deadlock: all live threads blocked ({})",
                    stuck.join(", ")
                ));
                s.free_run = true;
                self.cv.notify_all();
                return;
            }
            let step = s.steps.len();
            if step >= max_steps {
                s.failure = Some(format!(
                    "step budget exceeded ({max_steps} steps) — livelock?"
                ));
                s.free_run = true;
                self.cv.notify_all();
                return;
            }
            let order = try_order(&runnable, seed, step);
            let chosen = if let Some(&want) = replay.get(step) {
                if runnable.contains(&want) {
                    want
                } else {
                    s.failure = Some(format!(
                        "replay diverged at step {step}: thread {want} not runnable (runnable: {runnable:?})"
                    ));
                    s.free_run = true;
                    self.cv.notify_all();
                    return;
                }
            } else {
                order[0]
            };
            s.steps.push(Step {
                chosen,
                runnable: runnable.clone(),
            });
            s.states[chosen] = VState::Running;
            s.running = Some(chosen);
            self.cv.notify_all();
        }
    }
}

/// Handle a virtual-thread body uses to interact with the scheduler; also
/// the conduit to the embedded happens-before detector.
#[derive(Clone)]
pub struct Ctx {
    ctrl: Arc<Controller>,
    id: usize,
    /// Free-run retry counter: once a run has failed, a thread that still
    /// can't make progress after ~300 sleep-retries bails out with the
    /// swallowed sentinel panic instead of spinning forever.
    bail: std::cell::Cell<u32>,
}

impl Ctx {
    /// This virtual thread's id (what schedule strings refer to).
    pub fn id(&self) -> usize {
        self.id
    }

    /// An explicit interleaving point: park and let the scheduler choose.
    pub fn yield_point(&self) {
        self.ctrl.yield_now(self.id);
    }

    fn block_on(&self, resource: u64) {
        if self.ctrl.lock().free_run {
            let n = self.bail.get() + 1;
            self.bail.set(n);
            if n > 300 {
                panic!("{FREE_RUN_BAIL}");
            }
            std::thread::sleep(Duration::from_millis(1));
            return;
        }
        self.ctrl.block_on(self.id, resource);
    }

    fn unblock(&self, resource: u64) {
        self.ctrl.unblock(resource);
    }

    fn with_detector<R>(&self, f: impl FnOnce(&mut RaceDetector) -> R) -> R {
        f(&mut self.ctrl.lock().detector)
    }

    /// Record a scenario-level failure without panicking.
    pub fn fail(&self, msg: impl Into<String>) {
        self.ctrl.fail(msg.into());
    }
}

/// Registers virtual threads during scenario setup.
pub struct Spawner {
    ctrl: Arc<Controller>,
    #[allow(clippy::type_complexity)]
    bodies: Vec<(String, Box<dyn FnOnce(Ctx) + Send + 'static>)>,
}

impl Spawner {
    /// Register a virtual thread. Bodies start parked; nothing runs until
    /// setup returns and the explorer starts scheduling.
    pub fn spawn(&mut self, name: &str, body: impl FnOnce(Ctx) + Send + 'static) -> usize {
        let id = {
            let mut s = self.ctrl.lock();
            let id = s.states.len();
            s.states.push(VState::Ready);
            s.names.push(name.to_string());
            s.detector.fork(ROOT, id);
            id
        };
        self.bodies.push((name.to_string(), Box::new(body)));
        id
    }
}

/// A failing interleaving: what went wrong and the schedule to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message, deadlock description, or race report.
    pub message: String,
    /// Replayable schedule string (`s<seed>:0.1.0.…`).
    pub schedule: String,
}

/// Outcome of [`Explorer::explore`].
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Number of complete interleavings executed.
    pub schedules: usize,
    /// True when the bounded DFS covered the whole schedule space.
    pub exhausted: bool,
    /// First failing interleaving, if any.
    pub failure: Option<Failure>,
    /// Replayable schedule string of the last run (a witness that the
    /// scenario completes — printed by `oddci check`).
    pub last_schedule: String,
}

/// Outcome of [`Explorer::replay`].
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Failure message if the replayed interleaving fails.
    pub failure: Option<String>,
    /// Full schedule string actually executed (replay prefix plus any
    /// default-choice continuation).
    pub schedule: String,
    /// Steps executed.
    pub steps: usize,
}

struct RunRecord {
    steps: Vec<Step>,
    failure: Option<String>,
}

fn schedule_string(seed: u64, steps: &[Step]) -> String {
    let mut out = format!("s{seed}:");
    for (i, st) in steps.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        let _ = write!(out, "{}", st.chosen);
    }
    out
}

/// Parse a `s<seed>:a.b.c` schedule string back into seed + thread ids.
pub fn parse_schedule(s: &str) -> Option<(u64, Vec<usize>)> {
    let rest = s.strip_prefix('s')?;
    let (seed, tids) = rest.split_once(':')?;
    let seed = seed.parse().ok()?;
    if tids.is_empty() {
        return Some((seed, Vec::new()));
    }
    let tids = tids
        .split('.')
        .map(str::parse)
        .collect::<Result<Vec<usize>, _>>()
        .ok()?;
    Some((seed, tids))
}

/// Bounded depth-first schedule explorer. Scenario setup must be
/// deterministic (same spawns, same yield structure) for replay and DFS
/// backtracking to be meaningful.
#[derive(Debug, Clone)]
pub struct Explorer {
    seed: u64,
    max_schedules: usize,
    max_steps: usize,
}

impl Explorer {
    /// An explorer trying up to 256 schedules of up to 10 000 steps.
    pub fn new(seed: u64) -> Self {
        Explorer {
            seed,
            max_schedules: 256,
            max_steps: 10_000,
        }
    }

    /// Bound on complete interleavings to execute.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Bound on scheduling steps per interleaving (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    fn run_once(
        &self,
        setup: &dyn Fn(&mut Spawner),
        replay: &[usize],
        drive_seed: u64,
    ) -> RunRecord {
        let ctrl = Arc::new(Controller::default());
        let mut spawner = Spawner {
            ctrl: Arc::clone(&ctrl),
            bodies: Vec::new(),
        };
        setup(&mut spawner);
        let mut handles = Vec::new();
        for (id, (name, body)) in spawner.bodies.into_iter().enumerate() {
            let ctrl2 = Arc::clone(&ctrl);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("vthread-{id}-{name}"))
                    .spawn(move || {
                        let ctx = Ctx {
                            ctrl: Arc::clone(&ctrl2),
                            id,
                            bail: std::cell::Cell::new(0),
                        };
                        ctrl2.wait_turn(id);
                        let result = catch_unwind(AssertUnwindSafe(|| body(ctx)));
                        if let Err(payload) = result {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "virtual thread panicked".to_string());
                            if msg != FREE_RUN_BAIL {
                                ctrl2.fail(format!("[{name}] {msg}"));
                            }
                        }
                        ctrl2.finish(id);
                    })
                    .expect("spawn virtual thread"),
            );
        }
        ctrl.drive(drive_seed, replay, self.max_steps);
        for h in handles {
            let _ = h.join();
        }
        let mut s = ctrl.lock();
        if s.failure.is_none() {
            let races = s.detector.take_races();
            if let Some(r) = races.first() {
                s.failure = Some(r.to_string());
            }
        }
        RunRecord {
            steps: std::mem::take(&mut s.steps),
            failure: s.failure.take(),
        }
    }

    /// Search over interleavings of `setup`'s virtual threads, stopping
    /// at the first failure or the schedule bound. Two phases:
    ///
    /// 1. **Seeded random sampling** (a quarter of the budget, up to
    ///    128 runs): each run drives scheduling decisions from a
    ///    per-run derived seed. This is what catches bugs needing a
    ///    couple of context switches *early* in the run — a divergence
    ///    the deepest-first DFS would take exponentially long to reach
    ///    back to.
    /// 2. **Bounded DFS** from the deepest untried alternative, which
    ///    systematically covers (and can exhaust) small schedule
    ///    spaces.
    ///
    /// Both phases are fully deterministic in the explorer seed, and
    /// every failing run yields a replayable schedule string.
    pub fn explore(&self, setup: impl Fn(&mut Spawner)) -> ExploreResult {
        let mut schedules = 0;
        let samples = if self.max_schedules > 8 {
            (self.max_schedules / 4).min(128)
        } else {
            0
        };
        for i in 0..samples {
            let drive_seed = splitmix64(self.seed ^ 0xA11C_E5ED ^ (i as u64) << 32);
            let run = self.run_once(&setup, &[], drive_seed);
            schedules += 1;
            // The schedule string records every decision explicitly, so
            // it replays under the *explorer* seed regardless of the
            // per-run sampling seed.
            let schedule = schedule_string(self.seed, &run.steps);
            if let Some(message) = run.failure {
                return ExploreResult {
                    schedules,
                    exhausted: false,
                    failure: Some(Failure {
                        message,
                        schedule: schedule.clone(),
                    }),
                    last_schedule: schedule,
                };
            }
        }
        // The sampling budget is always a strict fraction of the total,
        // so the DFS below runs at least once and owns `last_schedule`.
        let mut replay: Vec<usize> = Vec::new();
        loop {
            let run = self.run_once(&setup, &replay, self.seed);
            schedules += 1;
            let schedule = schedule_string(self.seed, &run.steps);
            if let Some(message) = run.failure {
                return ExploreResult {
                    schedules,
                    exhausted: false,
                    failure: Some(Failure {
                        message,
                        schedule: schedule.clone(),
                    }),
                    last_schedule: schedule,
                };
            }
            // Deepest step with an untried alternative becomes the next
            // divergence point; choices before it are replayed verbatim.
            let mut next: Option<Vec<usize>> = None;
            for i in (0..run.steps.len()).rev() {
                let order = try_order(&run.steps[i].runnable, self.seed, i);
                let pos = order
                    .iter()
                    .position(|&t| t == run.steps[i].chosen)
                    .unwrap_or(order.len());
                if pos + 1 < order.len() {
                    let mut r: Vec<usize> = run.steps[..i].iter().map(|st| st.chosen).collect();
                    r.push(order[pos + 1]);
                    next = Some(r);
                    break;
                }
            }
            match next {
                None => {
                    return ExploreResult {
                        schedules,
                        exhausted: true,
                        failure: None,
                        last_schedule: schedule,
                    }
                }
                Some(_) if schedules >= self.max_schedules => {
                    return ExploreResult {
                        schedules,
                        exhausted: false,
                        failure: None,
                        last_schedule: schedule,
                    }
                }
                Some(r) => replay = r,
            }
        }
    }

    /// Re-execute one specific interleaving from its schedule string.
    /// The seed embedded in the string wins over this explorer's seed.
    pub fn replay(&self, schedule: &str, setup: impl Fn(&mut Spawner)) -> ReplayOutcome {
        let (seed, tids) = match parse_schedule(schedule) {
            Some(p) => p,
            None => {
                return ReplayOutcome {
                    failure: Some(format!("unparseable schedule string `{schedule}`")),
                    schedule: schedule.to_string(),
                    steps: 0,
                }
            }
        };
        let ex = Explorer {
            seed,
            max_schedules: 1,
            max_steps: self.max_steps,
        };
        let run = ex.run_once(&setup, &tids, seed);
        ReplayOutcome {
            failure: run.failure,
            schedule: schedule_string(seed, &run.steps),
            steps: run.steps.len(),
        }
    }
}

// ------------------------------------------------------- model primitives

static NEXT_RESOURCE: AtomicU64 = AtomicU64::new(1);

fn fresh_resource() -> u64 {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

/// A modeled mutex: mutual exclusion at the schedule level, acquire /
/// release edges in the happens-before detector.
#[derive(Debug)]
pub struct ModelMutex<T> {
    name: String,
    resource: u64,
    state: Mutex<MmState<T>>,
}

#[derive(Debug)]
struct MmState<T> {
    locked: bool,
    value: T,
}

/// Guard for [`ModelMutex::lock`]; access the value via
/// [`with`](ModelMutexGuard::with) (short real critical sections so other
/// virtual threads parked at yield points never hold the backing lock).
pub struct ModelMutexGuard<'a, T> {
    m: &'a ModelMutex<T>,
    ctx: Ctx,
}

impl<T> ModelMutex<T> {
    /// A named model mutex holding `value`.
    pub fn new(name: &str, value: T) -> Self {
        ModelMutex {
            name: name.to_string(),
            resource: fresh_resource(),
            state: Mutex::new(MmState {
                locked: false,
                value,
            }),
        }
    }

    fn state(&self) -> MutexGuard<'_, MmState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire (a yield point; blocks the virtual thread while held
    /// elsewhere).
    pub fn lock<'a>(&'a self, ctx: &Ctx) -> ModelMutexGuard<'a, T> {
        let mut bail = 0u32;
        loop {
            ctx.yield_point();
            {
                let mut st = self.state();
                if !st.locked {
                    st.locked = true;
                    drop(st);
                    ctx.with_detector(|d| d.acquire(ctx.id, &self.name));
                    return ModelMutexGuard {
                        m: self,
                        ctx: ctx.clone(),
                    };
                }
            }
            bail += 1;
            if bail > 5_000 {
                panic!("{FREE_RUN_BAIL}");
            }
            ctx.block_on(self.resource);
        }
    }
}

impl<T> ModelMutexGuard<'_, T> {
    /// Run `f` against the protected value.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.m.state().value)
    }
}

impl<T> Drop for ModelMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.m.state().locked = false;
        self.ctx
            .with_detector(|d| d.release(self.ctx.id, &self.m.name));
        self.ctx.unblock(self.m.resource);
    }
}

/// A modeled *unsynchronized* shared location: every read/write is a
/// yield point and feeds the race detector as a plain access.
#[derive(Debug)]
pub struct ModelCell<T> {
    name: String,
    state: Mutex<T>,
}

impl<T: Clone> ModelCell<T> {
    /// A named shared location.
    pub fn new(name: &str, value: T) -> Self {
        ModelCell {
            name: name.to_string(),
            state: Mutex::new(value),
        }
    }

    fn state(&self) -> MutexGuard<'_, T> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Plain read (checked for write-read races).
    pub fn read(&self, ctx: &Ctx) -> T {
        ctx.yield_point();
        ctx.with_detector(|d| d.read(ctx.id, &self.name));
        self.state().clone()
    }

    /// Plain write (checked for races against reads and writes).
    pub fn write(&self, ctx: &Ctx, value: T) {
        ctx.yield_point();
        ctx.with_detector(|d| d.write(ctx.id, &self.name));
        *self.state() = value;
    }

    /// Plain read-modify-write (a racing access of both kinds).
    pub fn update(&self, ctx: &Ctx, f: impl FnOnce(&mut T)) {
        ctx.yield_point();
        ctx.with_detector(|d| {
            d.read(ctx.id, &self.name);
            d.write(ctx.id, &self.name);
        });
        f(&mut self.state());
    }
}

/// A modeled atomic counter: loads are acquires, stores/RMWs are
/// release+acquire on the atomic's own sync id, so atomics never race —
/// exactly the exemption real Acquire/Release atomics get.
#[derive(Debug)]
pub struct ModelAtomic {
    name: String,
    state: Mutex<u64>,
}

impl ModelAtomic {
    /// A named atomic starting at `value`.
    pub fn new(name: &str, value: u64) -> Self {
        ModelAtomic {
            name: name.to_string(),
            state: Mutex::new(value),
        }
    }

    fn state(&self) -> MutexGuard<'_, u64> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Atomic load (a yield point).
    pub fn load(&self, ctx: &Ctx) -> u64 {
        ctx.yield_point();
        ctx.with_detector(|d| d.acquire(ctx.id, &self.name));
        *self.state()
    }

    /// Atomic store (a yield point).
    pub fn store(&self, ctx: &Ctx, value: u64) {
        ctx.yield_point();
        ctx.with_detector(|d| {
            d.acquire(ctx.id, &self.name);
            d.release(ctx.id, &self.name);
        });
        *self.state() = value;
    }

    /// Atomic fetch-add, returning the previous value (a yield point).
    pub fn fetch_add(&self, ctx: &Ctx, delta: u64) -> u64 {
        ctx.yield_point();
        ctx.with_detector(|d| {
            d.acquire(ctx.id, &self.name);
            d.release(ctx.id, &self.name);
        });
        let mut v = self.state();
        let prev = *v;
        *v = v.wrapping_add(delta);
        prev
    }
}

/// Error returned by model-channel operations on a closed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// A modeled MPMC channel: sends carry happens-before edges to receives;
/// a bounded channel blocks full senders, every channel blocks empty
/// receivers until [`close`](ModelChannel::close).
#[derive(Debug)]
pub struct ModelChannel<T> {
    name: String,
    cap: usize,
    space: u64,
    items: u64,
    state: Mutex<ChState<T>>,
}

#[derive(Debug)]
struct ChState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> ModelChannel<T> {
    /// A named channel; `cap == 0` means unbounded.
    pub fn new(name: &str, cap: usize) -> Self {
        ModelChannel {
            name: name.to_string(),
            cap,
            space: fresh_resource(),
            items: fresh_resource(),
            state: Mutex::new(ChState {
                queue: VecDeque::new(),
                closed: false,
            }),
        }
    }

    fn state(&self) -> MutexGuard<'_, ChState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocking send (a yield point; fails once the channel is closed).
    pub fn send(&self, ctx: &Ctx, value: T) -> Result<(), Closed> {
        let mut slot = Some(value);
        let mut bail = 0u32;
        loop {
            ctx.yield_point();
            {
                let mut st = self.state();
                if st.closed {
                    return Err(Closed);
                }
                if self.cap == 0 || st.queue.len() < self.cap {
                    st.queue
                        .push_back(slot.take().expect("send payload present"));
                    drop(st);
                    ctx.with_detector(|d| d.send(ctx.id, &self.name));
                    ctx.unblock(self.items);
                    return Ok(());
                }
            }
            bail += 1;
            if bail > 5_000 {
                panic!("{FREE_RUN_BAIL}");
            }
            ctx.block_on(self.space);
        }
    }

    /// Blocking receive (a yield point; fails once closed *and* drained).
    pub fn recv(&self, ctx: &Ctx) -> Result<T, Closed> {
        let mut bail = 0u32;
        loop {
            ctx.yield_point();
            {
                let mut st = self.state();
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    ctx.with_detector(|d| d.recv(ctx.id, &self.name));
                    ctx.unblock(self.space);
                    return Ok(v);
                }
                if st.closed {
                    return Err(Closed);
                }
            }
            bail += 1;
            if bail > 5_000 {
                panic!("{FREE_RUN_BAIL}");
            }
            ctx.block_on(self.items);
        }
    }

    /// Non-blocking receive (a yield point): `Ok(None)` when empty.
    pub fn try_recv(&self, ctx: &Ctx) -> Result<Option<T>, Closed> {
        ctx.yield_point();
        let mut st = self.state();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            ctx.with_detector(|d| d.recv(ctx.id, &self.name));
            ctx.unblock(self.space);
            return Ok(Some(v));
        }
        if st.closed {
            return Err(Closed);
        }
        Ok(None)
    }

    /// Close the channel, waking every blocked sender and receiver.
    pub fn close(&self, ctx: &Ctx) {
        ctx.yield_point();
        self.state().closed = true;
        ctx.with_detector(|d| d.send(ctx.id, &self.name));
        ctx.unblock(self.items);
        ctx.unblock(self.space);
    }

    /// Queued message count (a yield point).
    pub fn len(&self, ctx: &Ctx) -> usize {
        ctx.yield_point();
        self.state().queue.len()
    }

    /// Whether the queue is empty (a yield point).
    pub fn is_empty(&self, ctx: &Ctx) -> bool {
        self.len(ctx) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_string_round_trips() {
        assert_eq!(parse_schedule("s42:0.1.0"), Some((42, vec![0, 1, 0])));
        assert_eq!(parse_schedule("s7:"), Some((7, vec![])));
        assert_eq!(parse_schedule("nope"), None);
    }

    #[test]
    fn finds_unprotected_counter_race_and_replays_it() {
        let setup = |sp: &mut Spawner| {
            let cell = Arc::new(ModelCell::new("counter", 0u32));
            for t in 0..2 {
                let cell = Arc::clone(&cell);
                sp.spawn(&format!("incr-{t}"), move |ctx| {
                    let v = cell.read(&ctx);
                    cell.write(&ctx, v + 1);
                });
            }
        };
        let result = Explorer::new(42).max_schedules(64).explore(setup);
        let failure = result.failure.expect("two unsynchronized RMWs must race");
        assert!(failure.message.contains("data race"), "{}", failure.message);
        // The schedule string replays to the same failure.
        let replayed = Explorer::new(42).replay(&failure.schedule, setup);
        assert!(
            replayed.failure.is_some(),
            "replay must reproduce: {replayed:?}"
        );
    }

    #[test]
    fn lock_protected_counter_is_clean_and_exhausts() {
        let result = Explorer::new(7).max_schedules(512).explore(|sp| {
            let m = Arc::new(ModelMutex::new("m", 0u32));
            let total = Arc::new(ModelMutex::new("total", 0u32));
            for t in 0..2 {
                let m = Arc::clone(&m);
                let total = Arc::clone(&total);
                sp.spawn(&format!("incr-{t}"), move |ctx| {
                    let mut g = m.lock(&ctx);
                    g.with(|v| *v += 1);
                    drop(g);
                    let mut g = total.lock(&ctx);
                    g.with(|v| *v += 1);
                });
            }
        });
        assert!(result.failure.is_none(), "{:?}", result.failure);
        assert!(result.exhausted, "small space should exhaust: {result:?}");
        assert!(result.last_schedule.starts_with("s7:"));
    }

    #[test]
    fn detects_two_lock_deadlock() {
        let result = Explorer::new(3).max_schedules(256).explore(|sp| {
            let a = Arc::new(ModelMutex::new("a", ()));
            let b = Arc::new(ModelMutex::new("b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            sp.spawn("ab", move |ctx| {
                let _ga = a.lock(&ctx);
                let _gb = b.lock(&ctx);
            });
            sp.spawn("ba", move |ctx| {
                let _gb = b2.lock(&ctx);
                let _ga = a2.lock(&ctx);
            });
        });
        let failure = result
            .failure
            .expect("AB/BA must deadlock in some schedule");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn channel_handoff_is_ordered() {
        let result = Explorer::new(1).max_schedules(256).explore(|sp| {
            let ch = Arc::new(ModelChannel::new("ch", 1));
            let payload = Arc::new(ModelCell::new("payload", 0u32));
            let (ch2, payload2) = (Arc::clone(&ch), Arc::clone(&payload));
            sp.spawn("producer", move |ctx| {
                payload.write(&ctx, 9);
                ch.send(&ctx, 1u8).expect("receiver waits");
            });
            sp.spawn("consumer", move |ctx| {
                let _ = ch2.recv(&ctx).expect("producer sends");
                assert_eq!(payload2.read(&ctx), 9);
            });
        });
        assert!(result.failure.is_none(), "{:?}", result.failure);
    }
}
