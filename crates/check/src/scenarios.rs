//! Scaled-down models of the sharded-headend and streaming-sink
//! protocols, runnable under the schedule explorer.
//!
//! Each scenario exists in two flavours:
//!
//! * the **correct** protocol, mirroring the discipline the live crate
//!   actually implements — the explorer must find *no* failing
//!   interleaving within its bound;
//! * a **known-buggy** variant encoding a tempting-but-wrong
//!   simplification (ignore closed-channel sends, check-then-act outside
//!   the hub lock, treat a transient-empty queue as drained, tear an
//!   atomic stats snapshot) — the explorer must *find* the failure, and
//!   the discovered schedule string replays deterministically.
//!
//! The buggy variants are not dead weight: `oddci check model` runs them
//! as sensitivity checks (a detector that stops catching them has
//! regressed), and `tests/check_schedules.rs` pins their discovered
//! schedules. The torn-snapshot variant is the very bug this PR fixed in
//! `SinkStats::in_flight` (`crates/telemetry/src/sink.rs`): three relaxed
//! counter loads are not an atomic snapshot, so `emitted - persisted -
//! dropped` can underflow mid-run.

use crate::explore::{ModelAtomic, ModelChannel, ModelMutex, Spawner};
use std::sync::Arc;

/// How many events/tasks the small models push through.
const EVENTS: u64 = 3;

// ----------------------------------------------- shutdown under active sink

/// Shared pieces of the sink-shutdown model.
struct SinkModel {
    ctl: Arc<ModelAtomic>,
    lane: Arc<ModelChannel<u64>>,
    emitted: Arc<ModelAtomic>,
    persisted: Arc<ModelAtomic>,
    dropped: Arc<ModelAtomic>,
    prod_done: Arc<ModelChannel<()>>,
    writer_done: Arc<ModelChannel<()>>,
}

impl SinkModel {
    fn new() -> Self {
        SinkModel {
            ctl: Arc::new(ModelAtomic::new("sink.close_requested", 0)),
            lane: Arc::new(ModelChannel::new("sink.lane", 2)),
            emitted: Arc::new(ModelAtomic::new("sink.emitted", 0)),
            persisted: Arc::new(ModelAtomic::new("sink.persisted", 0)),
            dropped: Arc::new(ModelAtomic::new("sink.dropped", 0)),
            prod_done: Arc::new(ModelChannel::new("sink.prod_done", 0)),
            writer_done: Arc::new(ModelChannel::new("sink.writer_done", 0)),
        }
    }
}

fn sink_shutdown_model(sp: &mut Spawner, count_closed_send_as_drop: bool) {
    let m = Arc::new(SinkModel::new());

    let p = Arc::clone(&m);
    sp.spawn("producer", move |ctx| {
        for ev in 0..EVENTS {
            p.emitted.fetch_add(&ctx, 1);
            if p.ctl.load(&ctx) == 1 {
                p.dropped.fetch_add(&ctx, 1);
                continue;
            }
            if p.lane.len(&ctx) >= 2 {
                p.dropped.fetch_add(&ctx, 1);
                continue;
            }
            if p.lane.send(&ctx, ev).is_err() {
                // The lane closed between the ctl check and the send —
                // the event is still accounted for, as a drop.
                if count_closed_send_as_drop {
                    p.dropped.fetch_add(&ctx, 1);
                }
                // Buggy variant: swallow the error; the event vanishes.
            }
        }
        p.prod_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let w = Arc::clone(&m);
    sp.spawn("writer", move |ctx| {
        while w.lane.recv(&ctx).is_ok() {
            w.persisted.fetch_add(&ctx, 1);
        }
        w.writer_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let s = Arc::clone(&m);
    sp.spawn("shutdown", move |ctx| {
        s.ctl.store(&ctx, 1);
        s.lane.close(&ctx);
    });

    let v = Arc::clone(&m);
    sp.spawn("verifier", move |ctx| {
        v.prod_done.recv(&ctx).expect("producer finishes");
        v.writer_done.recv(&ctx).expect("writer finishes");
        let e = v.emitted.load(&ctx);
        let p = v.persisted.load(&ctx);
        let d = v.dropped.load(&ctx);
        assert_eq!(
            e,
            p + d,
            "sink lost events: emitted {e} != persisted {p} + dropped {d}"
        );
    });
}

/// Correct protocol: closing the lane mid-emit turns the failed send into
/// an accounted drop. `emitted == persisted + dropped` in every
/// interleaving.
pub fn shutdown_under_active_sink(sp: &mut Spawner) {
    sink_shutdown_model(sp, true);
}

/// Buggy variant: a send that fails because shutdown closed the lane is
/// silently swallowed, so the conservation invariant breaks in schedules
/// where close lands between the producer's ctl check and its send.
pub fn shutdown_under_active_sink_lossy(sp: &mut Spawner) {
    sink_shutdown_model(sp, false);
}

// ------------------------------------------------- heartbeat vs recompose

#[derive(Debug)]
struct HubModel {
    active: Vec<u64>,
    ledger: Vec<u64>,
}

struct RecomposeModel {
    hub: Arc<ModelMutex<HubModel>>,
    hb_done: Arc<ModelChannel<()>>,
    rc_done: Arc<ModelChannel<()>>,
}

impl RecomposeModel {
    fn new() -> Self {
        RecomposeModel {
            hub: Arc::new(ModelMutex::new(
                "live.hub",
                HubModel {
                    active: vec![1, 2],
                    ledger: Vec::new(),
                },
            )),
            hb_done: Arc::new(ModelChannel::new("hb_done", 0)),
            rc_done: Arc::new(ModelChannel::new("rc_done", 0)),
        }
    }
}

fn heartbeat_recompose_model(sp: &mut Spawner, check_and_insert_atomically: bool) {
    let m = Arc::new(RecomposeModel::new());

    let h = Arc::clone(&m);
    sp.spawn("heartbeat", move |ctx| {
        for node in [1u64, 2, 3] {
            if check_and_insert_atomically {
                // Membership check and ledger insert under one hub lock —
                // the rule the real shard handler follows.
                h.hub.lock(&ctx).with(|hub| {
                    if hub.active.contains(&node) {
                        hub.ledger.push(node);
                    }
                });
            } else {
                // Buggy TOCTOU variant: check, release, re-acquire, insert.
                let present = h.hub.lock(&ctx).with(|hub| hub.active.contains(&node));
                if present {
                    h.hub.lock(&ctx).with(|hub| hub.ledger.push(node));
                }
            }
        }
        h.hb_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let r = Arc::clone(&m);
    sp.spawn("recompose", move |ctx| {
        r.hub.lock(&ctx).with(|hub| {
            hub.active = vec![2, 3];
            // Recompose evicts ledger entries for removed nodes.
            let active = hub.active.clone();
            hub.ledger.retain(|n| active.contains(n));
        });
        r.rc_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let v = Arc::clone(&m);
    sp.spawn("verifier", move |ctx| {
        v.hb_done.recv(&ctx).expect("heartbeat finishes");
        v.rc_done.recv(&ctx).expect("recompose finishes");
        v.hub.lock(&ctx).with(|hub| {
            for n in &hub.ledger {
                assert!(
                    hub.active.contains(n),
                    "ledger holds node {n} which recompose removed (ledger {:?}, active {:?})",
                    hub.ledger,
                    hub.active
                );
            }
        });
    });
}

/// Correct protocol: heartbeat checks membership and inserts under one
/// hub-lock critical section; recompose prunes the ledger. The ledger is
/// a subset of the active set in every interleaving.
pub fn heartbeat_vs_recompose(sp: &mut Spawner) {
    heartbeat_recompose_model(sp, true);
}

/// Buggy TOCTOU variant: membership check and insert in *separate*
/// critical sections, so a recompose landing between them resurrects a
/// removed node in the ledger.
pub fn heartbeat_vs_recompose_toctou(sp: &mut Spawner) {
    heartbeat_recompose_model(sp, false);
}

// --------------------------------------------------------- dispatcher drain

struct DrainModel {
    dispatch: Arc<ModelChannel<u64>>,
    completed: Arc<ModelAtomic>,
    submit_done: Arc<ModelChannel<()>>,
    worker_done: Arc<ModelChannel<()>>,
}

impl DrainModel {
    fn new() -> Self {
        DrainModel {
            dispatch: Arc::new(ModelChannel::new("dispatch", 0)),
            completed: Arc::new(ModelAtomic::new("completed", 0)),
            submit_done: Arc::new(ModelChannel::new("submit_done", 0)),
            worker_done: Arc::new(ModelChannel::new("worker_done", 0)),
        }
    }
}

fn dispatcher_drain_model(sp: &mut Spawner, block_until_closed: bool) {
    let m = Arc::new(DrainModel::new());

    let s = Arc::clone(&m);
    sp.spawn("submitter", move |ctx| {
        for task in 0..EVENTS {
            s.dispatch.send(&ctx, task).expect("open while submitting");
        }
        s.submit_done.send(&ctx, ()).expect("shutdown is waiting");
    });

    for wid in 0..2 {
        let w = Arc::clone(&m);
        sp.spawn(&format!("worker-{wid}"), move |ctx| {
            if block_until_closed {
                // Correct drain: block for work until the channel is both
                // closed and empty.
                while w.dispatch.recv(&ctx).is_ok() {
                    w.completed.fetch_add(&ctx, 1);
                }
            } else {
                // Buggy variant: a transient-empty queue is mistaken for
                // a drained one and the worker exits early.
                while let Ok(Some(_)) = w.dispatch.try_recv(&ctx) {
                    w.completed.fetch_add(&ctx, 1);
                }
            }
            w.worker_done.send(&ctx, ()).expect("verifier is waiting");
        });
    }

    let sh = Arc::clone(&m);
    sp.spawn("shutdown", move |ctx| {
        sh.submit_done.recv(&ctx).expect("submitter finishes");
        sh.dispatch.close(&ctx);
    });

    let v = Arc::clone(&m);
    sp.spawn("verifier", move |ctx| {
        v.worker_done.recv(&ctx).expect("worker 0 finishes");
        v.worker_done.recv(&ctx).expect("worker 1 finishes");
        let done = v.completed.load(&ctx);
        assert_eq!(
            done, EVENTS,
            "drain lost tasks: completed {done} of {EVENTS}"
        );
    });
}

/// Correct drain: workers block on the dispatch channel until it is
/// closed *and* empty, so every submitted task is completed.
pub fn dispatcher_drain(sp: &mut Spawner) {
    dispatcher_drain_model(sp, true);
}

/// Buggy variant: workers poll and treat a momentarily-empty queue as
/// drained, so schedules that run workers before the submitter strand
/// tasks.
pub fn dispatcher_drain_hasty(sp: &mut Spawner) {
    dispatcher_drain_model(sp, false);
}

// ---------------------------------------------------- sink stats snapshot

fn sink_stats_model(sp: &mut Spawner, saturate: bool) {
    let emitted = Arc::new(ModelAtomic::new("stats.emitted", 0));
    let persisted = Arc::new(ModelAtomic::new("stats.persisted", 0));
    let dropped = Arc::new(ModelAtomic::new("stats.dropped", 0));
    let lane = Arc::new(ModelChannel::new("stats.lane", 0));

    let (e, l) = (Arc::clone(&emitted), Arc::clone(&lane));
    sp.spawn("producer", move |ctx| {
        for ev in 0..EVENTS {
            e.fetch_add(&ctx, 1);
            l.send(&ctx, ev).expect("writer drains");
        }
        l.close(&ctx);
    });

    let (p, l) = (Arc::clone(&persisted), Arc::clone(&lane));
    sp.spawn("writer", move |ctx| {
        while l.recv(&ctx).is_ok() {
            p.fetch_add(&ctx, 1);
        }
    });

    let (e, p, d) = (
        Arc::clone(&emitted),
        Arc::clone(&persisted),
        Arc::clone(&dropped),
    );
    sp.spawn("stats-reader", move |ctx| {
        // Three separate relaxed loads — NOT an atomic snapshot. The
        // writer can persist events the reader's `emitted` load predates.
        let e = e.load(&ctx);
        let p = p.load(&ctx);
        let d = d.load(&ctx);
        if saturate {
            // The fixed computation (SinkStats::in_flight): torn
            // snapshots clamp to zero instead of wrapping to ~u64::MAX.
            let in_flight = e.saturating_sub(p).saturating_sub(d);
            assert!(in_flight <= e, "saturating in_flight bounded by emitted");
        } else {
            // The pre-fix computation: plain subtraction underflows on a
            // torn snapshot.
            match e.checked_sub(p + d) {
                Some(_) => {}
                None => ctx.fail(format!(
                    "in_flight underflow: emitted {e} < persisted {p} + dropped {d} (torn snapshot)"
                )),
            }
        }
    });
}

/// The fixed `SinkStats::in_flight` computation (saturating): clean under
/// every interleaving even though the three loads still tear.
pub fn sink_stats_snapshot(sp: &mut Spawner) {
    sink_stats_model(sp, true);
}

/// The pre-fix computation (plain subtraction): the explorer finds a
/// schedule where the writer persists events between the reader's loads
/// and the subtraction underflows — the bug fixed in
/// `crates/telemetry/src/sink.rs` this PR.
pub fn sink_stats_snapshot_torn(sp: &mut Spawner) {
    sink_stats_model(sp, false);
}

// ------------------------------------------------------- epoch adoption

struct EpochModel {
    /// HelloAcks racing toward one reconnecting PNA: the revenant
    /// primary's (epoch 0) and the standby's (epoch 1).
    acks: Arc<ModelChannel<u64>>,
    /// The PNA's adopted epoch, stored as `epoch + 1` (0 = none yet).
    adopted: Arc<ModelAtomic>,
    pna_done: Arc<ModelChannel<()>>,
}

impl EpochModel {
    fn new() -> Self {
        EpochModel {
            acks: Arc::new(ModelChannel::new("epoch.acks", 2)),
            adopted: Arc::new(ModelAtomic::new("epoch.adopted", 0)),
            pna_done: Arc::new(ModelChannel::new("epoch.pna_done", 0)),
        }
    }
}

/// The failover hello race: after a primary crash both the standby *and*
/// a revenant primary (restarted from stale state, still fencing at
/// epoch 0) can answer a redialing PNA's hello. The wire client guards
/// this with epoch fencing — an ack below the highest epoch seen is
/// refused (`hello_handshake` in `crates/live/src/wire.rs`).
fn epoch_adoption_model(sp: &mut Spawner, fence_acks: bool) {
    let m = Arc::new(EpochModel::new());

    let p = Arc::clone(&m);
    sp.spawn("revenant-primary", move |ctx| {
        p.acks.send(&ctx, 0).expect("pna is receiving");
    });

    let s = Arc::clone(&m);
    sp.spawn("standby", move |ctx| {
        s.acks.send(&ctx, 1).expect("pna is receiving");
    });

    let n = Arc::clone(&m);
    sp.spawn("pna", move |ctx| {
        for _ in 0..2 {
            let epoch = n.acks.recv(&ctx).expect("both headends ack");
            let current = n.adopted.load(&ctx);
            if fence_acks {
                // Correct protocol: refuse an ack below the highest
                // epoch already seen.
                if epoch + 1 >= current {
                    n.adopted.store(&ctx, epoch + 1);
                }
            } else {
                // Buggy variant: adopt whichever headend answered last.
                n.adopted.store(&ctx, epoch + 1);
            }
        }
        n.pna_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let v = Arc::clone(&m);
    sp.spawn("verifier", move |ctx| {
        v.pna_done.recv(&ctx).expect("pna finishes");
        let adopted = v.adopted.load(&ctx);
        assert_eq!(
            adopted,
            2,
            "pna flipped back to the dead primary: adopted epoch {} after \
             the standby acked epoch 1",
            adopted.saturating_sub(1)
        );
    });
}

/// Correct protocol: the PNA fences hello acks by epoch, so whatever
/// order the standby's and the revenant primary's acks land in, it ends
/// on the standby's epoch.
pub fn epoch_adoption(sp: &mut Spawner) {
    epoch_adoption_model(sp, true);
}

/// Buggy variant: the PNA adopts any acking headend, so schedules where
/// the revenant primary's ack lands after the standby's flip the node
/// back to a fenced-off epoch.
pub fn epoch_adoption_flipback(sp: &mut Spawner) {
    epoch_adoption_model(sp, false);
}

// ------------------------------------------------ scale-down vs heartbeat

#[derive(Debug)]
struct TrimHub {
    /// Members currently in the instance.
    active: Vec<u64>,
    /// Tasks handed to a member and not yet completed: `(node, task)`.
    assigned: Vec<(u64, u64)>,
    /// Tasks waiting at the Backend.
    queue: Vec<u64>,
}

struct TrimModel {
    hub: Arc<ModelMutex<TrimHub>>,
    hb_done: Arc<ModelChannel<()>>,
    trim_done: Arc<ModelChannel<()>>,
}

impl TrimModel {
    fn new() -> Self {
        TrimModel {
            hub: Arc::new(ModelMutex::new(
                "trim.hub",
                TrimHub {
                    active: vec![1, 2],
                    assigned: Vec::new(),
                    queue: (0..EVENTS).collect(),
                },
            )),
            hb_done: Arc::new(ModelChannel::new("trim.hb_done", 0)),
            trim_done: Arc::new(ModelChannel::new("trim.trim_done", 0)),
        }
    }
}

/// The autoscale trim race: the reconciler shrinks the instance while
/// heartbeat-carried fetches keep assigning queued tasks to members. The
/// live shard handler evicts a member and requeues its in-flight tasks
/// inside ONE hub critical section; the tempting refactor — requeue the
/// victim's tasks first, then drop it from the membership — opens a
/// window where a concurrent fetch hands a fresh task to the
/// about-to-be-trimmed member. That task is assigned to a node no longer
/// in the instance and nothing will ever requeue it: stranded.
fn scale_down_heartbeat_model(sp: &mut Spawner, trim_atomically: bool) {
    let m = Arc::new(TrimModel::new());

    // Heartbeat-driven fetches: each heartbeat assigns one queued task to
    // a live member, preferring the trim victim (node 2) while it is
    // still active — the worst-case schedule for a sloppy trimmer.
    let h = Arc::clone(&m);
    sp.spawn("heartbeat-fetch", move |ctx| {
        for _ in 0..EVENTS {
            h.hub.lock(&ctx).with(|hub| {
                if let Some(task) = hub.queue.pop() {
                    let node = if hub.active.contains(&2) { 2 } else { 1 };
                    hub.assigned.push((node, task));
                }
            });
        }
        h.hb_done.send(&ctx, ()).expect("verifier is waiting");
    });

    // The reconciler trims node 2 out of the instance.
    let t = Arc::clone(&m);
    sp.spawn("trim", move |ctx| {
        if trim_atomically {
            // Correct protocol: membership drop and task requeue in one
            // critical section — no fetch can slip between them.
            t.hub.lock(&ctx).with(|hub| {
                hub.active.retain(|&n| n != 2);
                let mut orphaned = Vec::new();
                hub.assigned.retain(|&(node, task)| {
                    if node == 2 {
                        orphaned.push(task);
                        false
                    } else {
                        true
                    }
                });
                hub.queue.extend(orphaned);
            });
        } else {
            // Buggy variant: requeue the victim's tasks, release the
            // lock, then drop it from the membership. A fetch landing in
            // between assigns a fresh task to node 2 — which the second
            // section abandons without requeueing.
            t.hub.lock(&ctx).with(|hub| {
                let mut orphaned = Vec::new();
                hub.assigned.retain(|&(node, task)| {
                    if node == 2 {
                        orphaned.push(task);
                        false
                    } else {
                        true
                    }
                });
                hub.queue.extend(orphaned);
            });
            t.hub.lock(&ctx).with(|hub| {
                hub.active.retain(|&n| n != 2);
            });
        }
        t.trim_done.send(&ctx, ()).expect("verifier is waiting");
    });

    let v = Arc::clone(&m);
    sp.spawn("verifier", move |ctx| {
        v.hb_done.recv(&ctx).expect("heartbeat finishes");
        v.trim_done.recv(&ctx).expect("trim finishes");
        v.hub.lock(&ctx).with(|hub| {
            for &(node, task) in &hub.assigned {
                assert!(
                    hub.active.contains(&node),
                    "task {task} stranded on trimmed node {node} \
                     (assigned {:?}, active {:?}, queue {:?})",
                    hub.assigned,
                    hub.active,
                    hub.queue
                );
            }
        });
    });
}

/// Correct protocol: trimming a member and requeueing its in-flight
/// tasks happen in one hub critical section, so no concurrent heartbeat
/// fetch can strand a task on the trimmed node.
pub fn scale_down_vs_heartbeat(sp: &mut Spawner) {
    scale_down_heartbeat_model(sp, true);
}

/// Buggy variant: requeue and membership drop in separate critical
/// sections — a fetch between them assigns a task the trim abandons.
pub fn scale_down_vs_heartbeat_stranded(sp: &mut Spawner) {
    scale_down_heartbeat_model(sp, false);
}

// ----------------------------------------------------------------- registry

/// A named scenario plus its expected verdict under exploration.
pub struct Scenario {
    /// CLI / report name.
    pub name: &'static str,
    /// Setup function registering the virtual threads.
    pub setup: fn(&mut Spawner),
    /// True when the explorer must find no failure within the bound;
    /// false when it must find one (detector sensitivity check).
    pub expect_clean: bool,
}

/// Every scenario `oddci check model` runs.
pub static ALL: &[Scenario] = &[
    Scenario {
        name: "shutdown-under-active-sink",
        setup: shutdown_under_active_sink,
        expect_clean: true,
    },
    Scenario {
        name: "shutdown-under-active-sink-lossy",
        setup: shutdown_under_active_sink_lossy,
        expect_clean: false,
    },
    Scenario {
        name: "heartbeat-vs-recompose",
        setup: heartbeat_vs_recompose,
        expect_clean: true,
    },
    Scenario {
        name: "heartbeat-vs-recompose-toctou",
        setup: heartbeat_vs_recompose_toctou,
        expect_clean: false,
    },
    Scenario {
        name: "dispatcher-drain",
        setup: dispatcher_drain,
        expect_clean: true,
    },
    Scenario {
        name: "dispatcher-drain-hasty",
        setup: dispatcher_drain_hasty,
        expect_clean: false,
    },
    Scenario {
        name: "sink-stats-snapshot",
        setup: sink_stats_snapshot,
        expect_clean: true,
    },
    Scenario {
        name: "sink-stats-snapshot-torn",
        setup: sink_stats_snapshot_torn,
        expect_clean: false,
    },
    Scenario {
        name: "epoch-adoption",
        setup: epoch_adoption,
        expect_clean: true,
    },
    Scenario {
        name: "epoch-adoption-flipback",
        setup: epoch_adoption_flipback,
        expect_clean: false,
    },
    Scenario {
        name: "scale-down-vs-heartbeat",
        setup: scale_down_vs_heartbeat,
        expect_clean: true,
    },
    Scenario {
        name: "scale-down-vs-heartbeat-stranded",
        setup: scale_down_vs_heartbeat_stranded,
        expect_clean: false,
    },
];

/// Look a scenario up by its CLI name.
pub fn by_name(name: &str) -> Option<&'static Scenario> {
    ALL.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for s in ALL {
            assert!(std::ptr::eq(by_name(s.name).expect("resolvable"), s));
        }
        let mut names: Vec<_> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn correct_sink_shutdown_survives_exploration() {
        let r = Explorer::new(11)
            .max_schedules(120)
            .explore(shutdown_under_active_sink);
        assert!(r.failure.is_none(), "{:?}", r.failure);
        assert!(r.last_schedule.starts_with("s11:"));
    }

    #[test]
    fn fenced_epoch_adoption_survives_exploration() {
        let r = Explorer::new(11).max_schedules(120).explore(epoch_adoption);
        assert!(r.failure.is_none(), "{:?}", r.failure);
    }

    #[test]
    fn epoch_flipback_is_found_and_replayable() {
        let r = Explorer::new(11)
            .max_schedules(400)
            .explore(epoch_adoption_flipback);
        let f = r.failure.expect("explorer must find the epoch flip-back");
        assert!(f.message.contains("flipped back"), "{}", f.message);
        let replay = Explorer::new(11).replay(&f.schedule, epoch_adoption_flipback);
        let msg = replay.failure.expect("pinned schedule reproduces");
        assert!(msg.contains("flipped back"), "{msg}");
    }

    #[test]
    fn atomic_trim_survives_exploration() {
        let r = Explorer::new(11)
            .max_schedules(200)
            .explore(scale_down_vs_heartbeat);
        assert!(r.failure.is_none(), "{:?}", r.failure);
    }

    #[test]
    fn split_trim_strands_a_task_and_replays() {
        let r = Explorer::new(11)
            .max_schedules(400)
            .explore(scale_down_vs_heartbeat_stranded);
        let f = r.failure.expect("explorer must find the stranded task");
        assert!(f.message.contains("stranded"), "{}", f.message);
        let replay = Explorer::new(11).replay(&f.schedule, scale_down_vs_heartbeat_stranded);
        let msg = replay.failure.expect("pinned schedule reproduces");
        assert!(msg.contains("stranded"), "{msg}");
    }

    #[test]
    fn torn_snapshot_is_found_and_replayable() {
        let r = Explorer::new(11)
            .max_schedules(400)
            .explore(sink_stats_snapshot_torn);
        let f = r
            .failure
            .expect("explorer must find the torn-snapshot underflow");
        assert!(f.message.contains("underflow"), "{}", f.message);
        let replay = Explorer::new(11).replay(&f.schedule, sink_stats_snapshot_torn);
        let msg = replay.failure.expect("pinned schedule reproduces");
        assert!(msg.contains("underflow"), "{msg}");
    }
}
