//! The instrumented sync shim the workspace uses instead of raw locks.
//!
//! Three families of primitives, all registered with the [`crate::order`]
//! lock-order detector:
//!
//! * [`Mutex`] / [`RwLock`] — parking_lot-backed, non-poisoning;
//! * [`Monitor`] — a mutex *with a condvar* (`std::sync`-backed, because
//!   the workspace's parking_lot has no condvar), poison-transparent;
//! * [`bounded`] / [`unbounded`] channels — crossbeam-backed; every
//!   [`Sender::send`] runs the send-while-locked check.
//!
//! With checking disabled every operation adds one relaxed atomic load to
//! the underlying primitive — cheap enough that the live hot paths use
//! these types unconditionally. With checking enabled
//! ([`crate::enable`] / `ODDCI_CHECK=1`) each acquisition feeds the
//! acquisition-order graph and each send is checked against held
//! send-sensitive locks. The workspace lint (`oddci-check lint`) enforces
//! that no code outside this crate reaches for the raw types.

use crate::order;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

/// A non-poisoning mutex wired into the lock-order detector.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: parking_lot::Mutex<T>,
}

/// Guard for [`Mutex::lock`]; releases its order-graph entry on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    id: u64,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// An anonymous mutex (shows as `lock#N` in reports).
    pub fn new(value: T) -> Self {
        Mutex {
            id: order::register(None, false),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// A named mutex — names make lock-order reports readable.
    pub fn named(value: T, name: &'static str) -> Self {
        Mutex {
            id: order::register(Some(name), false),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// A named mutex under the *no channel send while held* rule: any
    /// [`Sender::send`] on the holding thread is flagged as a violation.
    pub fn named_send_sensitive(value: T, name: &'static str) -> Self {
        Mutex {
            id: order::register(Some(name), true),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (recording the acquisition when checking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        order::on_acquire(self.id);
        MutexGuard {
            id: self.id,
            inner: self.inner.lock(),
        }
    }

    /// Non-blocking acquisition attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        order::on_acquire(self.id);
        Some(MutexGuard { id: self.id, inner })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

// ---------------------------------------------------------------- RwLock

/// A non-poisoning reader-writer lock wired into the lock-order detector
/// (read and write acquisitions feed the same graph node).
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: parking_lot::RwLock<T>,
}

/// Guard for [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    id: u64,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

/// Guard for [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    id: u64,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// An anonymous lock.
    pub fn new(value: T) -> Self {
        RwLock {
            id: order::register(None, false),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// A named lock.
    pub fn named(value: T, name: &'static str) -> Self {
        RwLock {
            id: order::register(Some(name), false),
            inner: parking_lot::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        order::on_acquire(self.id);
        RwLockReadGuard {
            id: self.id,
            inner: self.inner.read(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        order::on_acquire(self.id);
        RwLockWriteGuard {
            id: self.id,
            inner: self.inner.write(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

// ---------------------------------------------------------------- Monitor

/// A mutex paired with a condition variable — the shim for the
/// `std::sync::{Mutex, Condvar}` rendezvous pattern (the streaming sink's
/// writer wake-up). Poison-transparent: a panic while holding the lock
/// does not poison it for everyone else, matching the rest of the shim.
#[derive(Debug, Default)]
pub struct Monitor<T> {
    id: u64,
    cv: std::sync::Condvar,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Monitor::lock`]. The inner option is `Some` for the
/// guard's whole life; it exists only so [`Monitor::wait_timeout`] can
/// move the raw guard out without double-releasing the order entry.
#[derive(Debug)]
pub struct MonitorGuard<'a, T> {
    id: u64,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Monitor<T> {
    /// An anonymous monitor.
    pub fn new(value: T) -> Self {
        Monitor {
            id: order::register(None, false),
            cv: std::sync::Condvar::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A named monitor.
    pub fn named(value: T, name: &'static str) -> Self {
        Monitor {
            id: order::register(Some(name), false),
            cv: std::sync::Condvar::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MonitorGuard<'_, T> {
        order::on_acquire(self.id);
        MonitorGuard {
            id: self.id,
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Releases `guard`, waits up to `timeout` for a notification, and
    /// reacquires. Returns the reacquired guard and whether the wait
    /// timed out.
    pub fn wait_timeout<'a>(
        &'a self,
        mut guard: MonitorGuard<'a, T>,
        timeout: Duration,
    ) -> (MonitorGuard<'a, T>, bool) {
        let raw = guard.inner.take().expect("guard always holds its lock");
        order::on_release(self.id);
        let (raw, result) = self
            .cv
            .wait_timeout(raw, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        order::on_acquire(self.id);
        (
            MonitorGuard {
                id: self.id,
                inner: Some(raw),
            },
            result.timed_out(),
        )
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

impl<T> Deref for MonitorGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard always holds its lock")
    }
}

impl<T> DerefMut for MonitorGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard always holds its lock")
    }
}

impl<T> Drop for MonitorGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            order::on_release(self.id);
        }
    }
}

// ---------------------------------------------------------------- channels

pub use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of a shim channel; [`send`](Sender::send) runs the
/// send-while-locked check before delegating.
pub struct Sender<T> {
    inner: crossbeam::channel::Sender<T>,
}

/// The receiving half of a shim channel.
pub struct Receiver<T> {
    inner: crossbeam::channel::Receiver<T>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing once every receiver is gone. When
    /// checking is enabled, first verifies no send-sensitive lock is
    /// held on this thread.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        order::check_channel_send();
        self.inner.send(value)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Blocks up to `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> crossbeam::channel::TryIter<'_, T> {
        self.inner.try_iter()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

/// A bounded MPMC channel (capacity semantics come from the underlying
/// crossbeam implementation).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = crossbeam::channel::bounded(capacity);
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = crossbeam::channel::unbounded();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn monitor_wait_times_out_and_wakes() {
        let mon = std::sync::Arc::new(Monitor::named(0u32, "test.monitor"));
        let g = mon.lock();
        let (g, timed_out) = mon.wait_timeout(g, Duration::from_millis(1));
        assert!(timed_out);
        drop(g);
        let mon2 = std::sync::Arc::clone(&mon);
        let waiter = std::thread::spawn(move || {
            let mut g = mon2.lock();
            while *g == 0 {
                let (next, _) = mon2.wait_timeout(g, Duration::from_millis(50));
                g = next;
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(5));
        *mon.lock() = 7;
        mon.notify_all();
        assert_eq!(waiter.join().expect("waiter exits"), 7);
    }

    #[test]
    fn channels_round_trip() {
        let (tx, rx) = bounded(4);
        tx.send(1u8).expect("receiver alive");
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(2).is_err());
    }
}
