//! Vector-clock happens-before race detection.
//!
//! A [`RaceDetector`] tracks a vector clock per logical thread, per sync
//! object (lock or channel) and per memory location. The rules are the
//! textbook ones:
//!
//! * `fork(parent, child)` — child inherits parent's knowledge;
//! * `acquire(t, sync)` / `release(t, sync)` — release publishes the
//!   thread's clock into the sync object, acquire joins it back, so two
//!   critical sections on the same lock are ordered;
//! * `send`/`recv` on a channel id use the same publish/join pair (a
//!   message carries the sender's clock to the receiver);
//! * `write(t, loc)` / `read(t, loc)` — a write must happen-after every
//!   prior read and write of the location; a read must happen-after every
//!   prior write. Anything else is a data race, reported as a [`Race`].
//!
//! Accesses performed through atomics are *not* fed to `read`/`write` —
//! model them as `acquire`/`release` pairs on a sync id instead, which is
//! exactly what Acquire/Release orderings mean. The schedule explorer's
//! model primitives ([`crate::scenarios`]) wire themselves to a detector
//! automatically; it is also usable standalone, as the telemetry-protocol
//! tests in this module do: model the ring-cursor and lane-drop-counter
//! protocols, feed the detector the access pattern, assert race-freedom.

use std::collections::BTreeMap;
use std::fmt;

/// One logical thread's knowledge: `clock[t]` = latest event of thread
/// `t` this thread has observed.
type Clock = BTreeMap<usize, u64>;

fn join(into: &mut Clock, other: &Clock) {
    for (&t, &v) in other {
        let e = into.entry(t).or_insert(0);
        *e = (*e).max(v);
    }
}

/// `a ≤ b` pointwise — every event in `a` is known to `b`.
fn le(a: &Clock, b: &Clock) -> bool {
    a.iter()
        .all(|(&t, &v)| b.get(&t).copied().unwrap_or(0) >= v)
}

/// A detected data race: two accesses to the same location, at least one
/// a write, with no happens-before edge between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Location name as given to `read`/`write`.
    pub location: String,
    /// Thread performing the racing access.
    pub thread: usize,
    /// Thread that performed the earlier conflicting access.
    pub other_thread: usize,
    /// `"write-write"`, `"read-write"` or `"write-read"`.
    pub kind: &'static str,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race ({}) on `{}` between thread {} and thread {}",
            self.kind, self.location, self.thread, self.other_thread
        )
    }
}

#[derive(Debug, Default, Clone)]
struct Location {
    /// Clock of the last write and the thread that made it.
    last_write: Option<(usize, Clock)>,
    /// Per-thread clock at its latest read since the last write.
    reads: BTreeMap<usize, Clock>,
}

/// Happens-before race detector over named locations and sync objects.
#[derive(Debug, Default)]
pub struct RaceDetector {
    threads: BTreeMap<usize, Clock>,
    syncs: BTreeMap<String, Clock>,
    locations: BTreeMap<String, Location>,
    races: Vec<Race>,
}

impl RaceDetector {
    /// A fresh detector with no threads registered; threads register
    /// implicitly on first use, or via [`fork`](Self::fork).
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&mut self, t: usize) {
        let clock = self.threads.entry(t).or_default();
        *clock.entry(t).or_insert(0) += 1;
    }

    fn clock(&mut self, t: usize) -> Clock {
        self.threads.entry(t).or_default().clone()
    }

    /// `child` starts knowing everything `parent` knows.
    pub fn fork(&mut self, parent: usize, child: usize) {
        self.tick(parent);
        let pc = self.clock(parent);
        let cc = self.threads.entry(child).or_default();
        join(cc, &pc);
        self.tick(child);
    }

    /// `parent` observes everything `child` did (thread join).
    pub fn join_thread(&mut self, parent: usize, child: usize) {
        self.tick(child);
        let cc = self.clock(child);
        let pc = self.threads.entry(parent).or_default();
        join(pc, &cc);
        self.tick(parent);
    }

    /// Thread `t` acquires sync object `sync` — joins the clock the last
    /// releaser published.
    pub fn acquire(&mut self, t: usize, sync: &str) {
        self.tick(t);
        if let Some(sc) = self.syncs.get(sync).cloned() {
            let tc = self.threads.entry(t).or_default();
            join(tc, &sc);
        }
    }

    /// Thread `t` releases `sync` — publishes its clock for the next
    /// acquirer.
    pub fn release(&mut self, t: usize, sync: &str) {
        self.tick(t);
        let tc = self.clock(t);
        let sc = self.syncs.entry(sync.to_string()).or_default();
        join(sc, &tc);
    }

    /// A channel send is a release on the channel's sync id.
    pub fn send(&mut self, t: usize, channel: &str) {
        self.release(t, channel);
    }

    /// A channel receive is an acquire on the channel's sync id.
    pub fn recv(&mut self, t: usize, channel: &str) {
        self.acquire(t, channel);
    }

    /// Thread `t` performs a plain (non-atomic) read of `location`.
    pub fn read(&mut self, t: usize, location: &str) {
        self.tick(t);
        let tc = self.clock(t);
        let loc = self.locations.entry(location.to_string()).or_default();
        if let Some((wt, wc)) = &loc.last_write {
            if *wt != t && !le(wc, &tc) {
                self.races.push(Race {
                    location: location.to_string(),
                    thread: t,
                    other_thread: *wt,
                    kind: "write-read",
                });
            }
        }
        loc.reads.insert(t, tc);
    }

    /// Thread `t` performs a plain (non-atomic) write to `location`.
    pub fn write(&mut self, t: usize, location: &str) {
        self.tick(t);
        let tc = self.clock(t);
        let loc = self.locations.entry(location.to_string()).or_default();
        if let Some((wt, wc)) = &loc.last_write {
            if *wt != t && !le(wc, &tc) {
                self.races.push(Race {
                    location: location.to_string(),
                    thread: t,
                    other_thread: *wt,
                    kind: "write-write",
                });
            }
        }
        for (&rt, rc) in &loc.reads {
            if rt != t && !le(rc, &tc) {
                self.races.push(Race {
                    location: location.to_string(),
                    thread: t,
                    other_thread: rt,
                    kind: "read-write",
                });
            }
        }
        loc.reads.clear();
        loc.last_write = Some((t, tc));
    }

    /// Races found so far, in discovery order.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Drain the recorded races.
    pub fn take_races(&mut self) -> Vec<Race> {
        std::mem::take(&mut self.races)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = RaceDetector::new();
        d.fork(0, 1);
        d.write(0, "x");
        d.write(1, "x");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].kind, "write-write");
    }

    #[test]
    fn lock_ordered_accesses_are_clean() {
        let mut d = RaceDetector::new();
        d.fork(0, 1);
        d.acquire(0, "m");
        d.write(0, "x");
        d.release(0, "m");
        d.acquire(1, "m");
        d.write(1, "x");
        d.read(1, "x");
        d.release(1, "m");
        assert!(d.races().is_empty(), "{:?}", d.races());
    }

    #[test]
    fn channel_transfer_orders_the_handoff() {
        let mut d = RaceDetector::new();
        d.fork(0, 1);
        d.write(0, "payload");
        d.send(0, "ch");
        d.recv(1, "ch");
        d.read(1, "payload");
        assert!(d.races().is_empty(), "{:?}", d.races());
        // Reading without the recv edge would race:
        let mut d = RaceDetector::new();
        d.fork(0, 1);
        d.write(0, "payload");
        d.send(0, "ch");
        d.read(1, "payload");
        assert_eq!(d.races().len(), 1);
        assert_eq!(d.races()[0].kind, "write-read");
    }

    /// Model of the telemetry ring's cursor protocol: the recorder
    /// publishes events under the ring mutex; readers snapshot under the
    /// same mutex. Mutual exclusion alone orders every access.
    #[test]
    fn telemetry_ring_cursor_protocol_is_race_free() {
        let mut d = RaceDetector::new();
        d.fork(0, 1); // recorder thread
        d.fork(0, 2); // snapshot reader
        for _ in 0..3 {
            d.acquire(1, "ring.mutex");
            d.write(1, "ring.cursor");
            d.write(1, "ring.slots");
            d.release(1, "ring.mutex");
        }
        d.acquire(2, "ring.mutex");
        d.read(2, "ring.cursor");
        d.read(2, "ring.slots");
        d.release(2, "ring.mutex");
        assert!(d.races().is_empty(), "{:?}", d.races());
    }

    /// Model of the sink's lane drop counters: producers bump an atomic
    /// drop counter (modeled as release on the counter's sync id), the
    /// stats reader joins via acquire. The *non-atomic* lane queue is
    /// protected by the lane mutex. Dropping the lane mutex edge races.
    #[test]
    fn sink_lane_drop_counter_protocol() {
        let mut d = RaceDetector::new();
        d.fork(0, 1); // producer
        d.fork(0, 2); // writer thread
        d.acquire(1, "lane.mutex");
        d.write(1, "lane.queue");
        d.release(1, "lane.mutex");
        d.send(1, "atomic:lane.dropped");
        d.acquire(2, "lane.mutex");
        d.read(2, "lane.queue");
        d.release(2, "lane.mutex");
        d.recv(2, "atomic:lane.dropped");
        assert!(d.races().is_empty(), "{:?}", d.races());
        // Same pattern without the lane mutex: queue access races.
        let mut d = RaceDetector::new();
        d.fork(0, 1);
        d.fork(0, 2);
        d.write(1, "lane.queue");
        d.read(2, "lane.queue");
        assert_eq!(d.races().len(), 1);
    }
}
