//! `oddci-check` — CLI front-end for the workspace lint, the schedule
//! explorer, and schedule replay. Also reachable as `oddci check …`.

use oddci_check::explore::Explorer;
use oddci_check::{lint, scenarios};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
oddci-check: concurrency correctness tooling for the OddCI workspace

USAGE:
    oddci-check lint [ROOT]                  run the workspace lint (exit 1 on findings)
    oddci-check model [OPTS] [SCENARIO]      explore scenario interleavings (all by default)
    oddci-check replay SCENARIO SCHEDULE     re-execute one pinned interleaving
    oddci-check list                         list model scenarios
    oddci-check help                         this text

MODEL OPTS:
    --seed N          scheduler seed (default 11)
    --schedules N     bound on interleavings per scenario (default 400)

Schedules print as `s<seed>:t0.t1.…` — pass one to `replay` verbatim.
Scenarios marked `expect-fail` are detector sensitivity checks: the
explorer MUST find their seeded bug; `model` fails if it stops doing so.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(args.get(1).map(String::as_str)),
        Some("model") => cmd_model(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("list") => {
            for s in scenarios::ALL {
                println!(
                    "{:36} {}",
                    s.name,
                    if s.expect_clean {
                        "expect-clean"
                    } else {
                        "expect-fail"
                    }
                );
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(root_arg: Option<&str>) -> ExitCode {
    let start = Path::new(root_arg.unwrap_or("."));
    let Some(root) = lint::find_root(start) else {
        eprintln!(
            "oddci-check lint: no workspace root at or above {} (crates/telemetry/src/event.rs not found)",
            start.display()
        );
        return ExitCode::FAILURE;
    };
    match lint::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("oddci-check lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("oddci-check lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("oddci-check lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_model(args: &[String]) -> ExitCode {
    let mut seed = 11u64;
    let mut schedules = 400usize;
    let mut which: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return arg_err("--seed expects an integer"),
            },
            "--schedules" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => schedules = v,
                None => return arg_err("--schedules expects an integer"),
            },
            name if !name.starts_with('-') => which = Some(name.to_string()),
            other => return arg_err(&format!("unknown option `{other}`")),
        }
    }
    let selected: Vec<&scenarios::Scenario> = match &which {
        Some(name) => match scenarios::by_name(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario `{name}` — `oddci-check list` shows them");
                return ExitCode::FAILURE;
            }
        },
        None => scenarios::ALL.iter().collect(),
    };

    let mut failed = false;
    for s in selected {
        let result = Explorer::new(seed)
            .max_schedules(schedules)
            .explore(s.setup);
        match (&result.failure, s.expect_clean) {
            (None, true) => println!(
                "ok   {:36} clean over {} schedule(s){} — last {}",
                s.name,
                result.schedules,
                if result.exhausted { " (exhausted)" } else { "" },
                result.last_schedule
            ),
            (Some(f), false) => println!(
                "ok   {:36} detector caught after {} schedule(s): {} — replay {}",
                s.name,
                result.schedules,
                f.message.lines().next().unwrap_or(""),
                f.schedule
            ),
            (Some(f), true) => {
                failed = true;
                println!(
                    "FAIL {:36} failure in supposedly-correct protocol: {} — replay {}",
                    s.name, f.message, f.schedule
                );
            }
            (None, false) => {
                failed = true;
                println!(
                    "FAIL {:36} detector missed the seeded bug within {} schedule(s) (sensitivity regression)",
                    s.name, result.schedules
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let (Some(name), Some(schedule)) = (args.first(), args.get(1)) else {
        return arg_err("replay expects SCENARIO and SCHEDULE");
    };
    let Some(s) = scenarios::by_name(name) else {
        eprintln!("unknown scenario `{name}` — `oddci-check list` shows them");
        return ExitCode::FAILURE;
    };
    let outcome = Explorer::new(0).replay(schedule, s.setup);
    println!("schedule {} ({} step(s))", outcome.schedule, outcome.steps);
    match outcome.failure {
        Some(msg) => {
            println!("failure reproduced:\n{msg}");
            ExitCode::SUCCESS
        }
        None => {
            println!("no failure under this interleaving");
            ExitCode::SUCCESS
        }
    }
}

fn arg_err(msg: &str) -> ExitCode {
    eprintln!("oddci-check: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
