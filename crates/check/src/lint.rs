//! Dependency-free workspace linter (line/token scan, no parser).
//!
//! Four rules over `crates/**/*.rs` (the `check` crate itself is exempt —
//! it implements the shim and the scheduler, so it legitimately touches
//! raw primitives):
//!
//! * **raw-lock** — no `parking_lot`, `crossbeam`, `std::sync::Mutex` /
//!   `RwLock` / `Condvar` / `mpsc` outside `oddci_check::sync`. The shim
//!   is the only lock supplier, which is what makes the lock-order graph
//!   complete.
//! * **phase** — the telemetry phase vocabulary stays closed: every
//!   `Phase::X` names a variant declared in
//!   `crates/telemetry/src/event.rs`, span phases are only emitted
//!   through the RAII-complete `span(..)` / `duration(..)` entry points
//!   (which guarantee an end on every return path), and instant phases
//!   only through `instant(..)`.
//! * **message-enum** — every variant of a `*Msg` enum in `crates/live`
//!   is referenced somewhere by qualified name (`Enum::Variant`), i.e.
//!   has a construction/handler site; a variant nobody matches is a
//!   protocol hole.
//! * **no-unwrap** — `.unwrap()` / `.expect(` are banned in the live hot
//!   paths: `crates/live/src/**`, `crates/wire/src/**` and
//!   `crates/telemetry/src/sink.rs` (non-test code). Panicking across the headend poisons nothing (the
//!   shim is non-poisoning) but silently kills a thread the shutdown
//!   accounting then has to explain.
//!
//! Suppress a finding with a trailing or preceding comment:
//! `// oddci-check: allow(<rule>)` (applies to that line and the next).
//! Comments are stripped before token scanning, so prose never trips a
//! rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintViolation {
    /// Rule id: `raw-lock`, `phase`, `message-enum` or `no-unwrap`.
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Ascend from `start` until a directory containing
/// `crates/telemetry/src/event.rs` is found (the workspace root).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    for _ in 0..6 {
        if dir.join("crates/telemetry/src/event.rs").is_file() {
            return Some(dir);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

/// Run every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> io::Result<Vec<LintViolation>> {
    let files = rs_files(&root.join("crates"))?;
    let phase_vocab = parse_phase_vocabulary(root)?;
    let mut sources = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The check crate implements the shim/scheduler/linter itself.
        if rel.starts_with("crates/check/") {
            continue;
        }
        let raw = fs::read_to_string(path)?;
        let allowed = suppressions(&raw);
        let scrubbed = scrub(&raw);
        sources.push(Source {
            rel,
            raw,
            scrubbed,
            allowed,
        });
    }

    let mut out = Vec::new();
    for src in &sources {
        check_raw_lock(src, &mut out);
        check_phase(src, &phase_vocab, &mut out);
        check_no_unwrap(src, &mut out);
    }
    check_message_enums(&sources, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

struct Source {
    rel: String,
    raw: String,
    scrubbed: String,
    /// line number → rules suppressed on that line.
    allowed: BTreeMap<usize, BTreeSet<String>>,
}

impl Source {
    fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allowed
            .get(&line)
            .is_some_and(|rules| rules.contains(rule))
    }
}

fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries {
            let path = entry?.path();
            if path.is_dir() {
                let name = path.file_name().map(|n| n.to_string_lossy().to_string());
                if name.as_deref() != Some("target") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Replace `//` line comments and `/* */` block comments with spaces,
/// preserving offsets and newlines so line numbers stay valid. String
/// literals are left alone — token needles are chosen so real-world
/// strings don't collide.
fn scrub(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    let mut in_str = false;
    let mut in_line = false;
    let mut in_block = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if in_line {
            if c == b'\n' {
                in_line = false;
            } else {
                out[i] = b' ';
            }
        } else if in_block > 0 {
            if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                out[i] = b' ';
                out[i + 1] = b' ';
                in_block -= 1;
                i += 2;
                continue;
            }
            if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                in_block += 1;
            }
            if c != b'\n' {
                out[i] = b' ';
            }
        } else if in_str {
            if c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
            }
        } else if c == b'"' {
            in_str = true;
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            in_line = true;
            out[i] = b' ';
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            in_block = 1;
            out[i] = b' ';
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `// oddci-check: allow(rule)` comments; each covers its own line
/// and the following one.
fn suppressions(raw: &str) -> BTreeMap<usize, BTreeSet<String>> {
    let marker = "oddci-check: allow(";
    let mut out: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(pos) = line.find(marker) else {
            continue;
        };
        let rest = &line[pos + marker.len()..];
        let Some(end) = rest.find(')') else { continue };
        let rule = rest[..end].trim().to_string();
        let ln = idx + 1;
        out.entry(ln).or_default().insert(rule.clone());
        out.entry(ln + 1).or_default().insert(rule);
    }
    out
}

fn line_of(text: &str, offset: usize) -> usize {
    text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// True when `needle` occurs at `pos` *not* preceded by an identifier
/// character (so `span(` doesn't match inside `span_durations_us(`).
fn token_at(text: &str, pos: usize, _needle: &str) -> bool {
    if pos == 0 {
        return true;
    }
    let prev = text.as_bytes()[pos - 1];
    !(prev.is_ascii_alphanumeric() || prev == b'_')
}

fn find_tokens(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(needle) {
        let pos = from + p;
        if token_at(text, pos, needle) {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

// ------------------------------------------------------------- raw-lock

const RAW_LOCK_TOKENS: &[&str] = &[
    "parking_lot",
    "crossbeam",
    "std::sync::Mutex",
    "std::sync::RwLock",
    "std::sync::Condvar",
    "std::sync::mpsc",
];

fn check_raw_lock(src: &Source, out: &mut Vec<LintViolation>) {
    for needle in RAW_LOCK_TOKENS {
        for pos in find_tokens(&src.scrubbed, needle) {
            let line = line_of(&src.scrubbed, pos);
            if src.is_allowed("raw-lock", line) {
                continue;
            }
            out.push(LintViolation {
                rule: "raw-lock",
                file: src.rel.clone(),
                line,
                message: format!(
                    "raw `{needle}` outside the oddci_check::sync shim — use the shim so the lock-order graph stays complete"
                ),
            });
        }
    }
    // `use std::sync::{..}` group imports pulling in a banned item.
    for pos in find_tokens(&src.scrubbed, "std::sync::{") {
        let rest = &src.scrubbed[pos..];
        let Some(close) = rest.find('}') else {
            continue;
        };
        let group = &rest[..close];
        for item in ["Mutex", "RwLock", "Condvar", "mpsc"] {
            if group
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .any(|tok| tok == item)
            {
                let line = line_of(&src.scrubbed, pos);
                if src.is_allowed("raw-lock", line) {
                    continue;
                }
                out.push(LintViolation {
                    rule: "raw-lock",
                    file: src.rel.clone(),
                    line,
                    message: format!(
                        "raw `std::sync::{item}` imported outside the oddci_check::sync shim"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- phase

struct PhaseVocab {
    variants: BTreeSet<String>,
    span: BTreeSet<String>,
}

fn phase_idents(region: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pos in find_tokens(region, "Phase::") {
        let rest = &region[pos + "Phase::".len()..];
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            out.push(ident);
        }
    }
    out
}

fn parse_phase_vocabulary(root: &Path) -> io::Result<PhaseVocab> {
    let text = scrub(&fs::read_to_string(
        root.join("crates/telemetry/src/event.rs"),
    )?);
    let all_start = text.find("const ALL").ok_or_else(|| {
        io::Error::other("event.rs: `const ALL` phase list not found — phase lint can't run")
    })?;
    // Skip past the type annotation (`: [Phase; N] =`) to the list itself.
    let eq = text[all_start..]
        .find('=')
        .map(|p| all_start + p)
        .ok_or_else(|| io::Error::other("event.rs: malformed ALL list"))?;
    let all_region = &text[eq..];
    let all_end = all_region
        .find(']')
        .ok_or_else(|| io::Error::other("event.rs: unterminated ALL list"))?;
    let variants: BTreeSet<String> = phase_idents(&all_region[..all_end]).into_iter().collect();

    let span_start = text.find("fn is_span").ok_or_else(|| {
        io::Error::other("event.rs: `fn is_span` not found — phase lint can't run")
    })?;
    let span_region = &text[span_start..];
    let span_end = span_region
        .find(')')
        .map(|p| {
            // Skip past the `(&self)` parameter list to the matches! body.
            span_region[p + 1..]
                .find(')')
                .map(|q| p + 1 + q)
                .unwrap_or(span_region.len())
        })
        .unwrap_or(span_region.len());
    let span: BTreeSet<String> = phase_idents(&span_region[..span_end]).into_iter().collect();
    if variants.is_empty() || span.is_empty() {
        return Err(io::Error::other(
            "event.rs: parsed an empty phase vocabulary",
        ));
    }
    Ok(PhaseVocab { variants, span })
}

const EMIT_SPAN: &[&str] = &["span(", "duration("];
const EMIT_INSTANT: &[&str] = &["instant("];

fn check_phase(src: &Source, vocab: &PhaseVocab, out: &mut Vec<LintViolation>) {
    if src.rel == "crates/telemetry/src/event.rs" {
        return; // The vocabulary definition itself.
    }
    for pos in find_tokens(&src.scrubbed, "Phase::") {
        let line = line_of(&src.scrubbed, pos);
        if src.is_allowed("phase", line) {
            continue;
        }
        let rest = &src.scrubbed[pos + "Phase::".len()..];
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() || ident == "ALL" || ident == "COUNT" {
            continue;
        }
        if !vocab.variants.contains(&ident) {
            out.push(LintViolation {
                rule: "phase",
                file: src.rel.clone(),
                line,
                message: format!(
                    "`Phase::{ident}` is not in the closed vocabulary declared in crates/telemetry/src/event.rs"
                ),
            });
            continue;
        }
        // Emission-discipline: look backwards within the statement for
        // the nearest emit entry point.
        let stmt_start = src.scrubbed[..pos]
            .rfind([';', '{', '}'])
            .map(|p| p + 1)
            .unwrap_or(0);
        let window = &src.scrubbed[stmt_start..pos];
        let nearest = |needles: &[&str]| -> Option<usize> {
            needles.iter().flat_map(|n| find_tokens(window, n)).max()
        };
        let span_call = nearest(EMIT_SPAN);
        let instant_call = nearest(EMIT_INSTANT);
        let is_span = vocab.span.contains(&ident);
        match (span_call, instant_call) {
            (Some(s), i) if i.is_none_or(|i| s > i) && !is_span => {
                out.push(LintViolation {
                    rule: "phase",
                    file: src.rel.clone(),
                    line,
                    message: format!(
                        "instant phase `Phase::{ident}` emitted through span()/duration() — instant phases must use instant()"
                    ),
                });
            }
            (s, Some(i)) if s.is_none_or(|s| i > s) && is_span => {
                out.push(LintViolation {
                    rule: "phase",
                    file: src.rel.clone(),
                    line,
                    message: format!(
                        "span phase `Phase::{ident}` emitted through instant() — span phases must use span()/duration() so every begin gets an end on all return paths"
                    ),
                });
            }
            _ => {}
        }
    }
}

// --------------------------------------------------------- message-enum

fn check_message_enums(sources: &[Source], out: &mut Vec<LintViolation>) {
    // Collect `enum *Msg` variants declared in crates/live.
    let mut enums: Vec<(String, String, usize, Vec<String>)> = Vec::new(); // (file, name, line, variants)
    for src in sources {
        if !src.rel.starts_with("crates/live/") {
            continue;
        }
        for pos in find_tokens(&src.scrubbed, "enum ") {
            let rest = &src.scrubbed[pos + "enum ".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.ends_with("Msg") {
                continue;
            }
            let Some(open) = rest.find('{') else { continue };
            let Some(close) = rest[open..].find("\n}") else {
                continue;
            };
            let body = &rest[open + 1..open + close];
            let mut variants = Vec::new();
            for line in body.lines() {
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                let ident: String = t
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push(ident);
                }
            }
            enums.push((src.rel.clone(), name, line_of(&src.scrubbed, pos), variants));
        }
    }
    for (file, name, line, variants) in enums {
        for variant in variants {
            let qualified = format!("{name}::{variant}");
            let used = sources
                .iter()
                .filter(|s| s.rel.starts_with("crates/live/"))
                .any(|s| !find_tokens(&s.scrubbed, &qualified).is_empty());
            if !used {
                let src = sources.iter().find(|s| s.rel == file);
                if src.is_some_and(|s| s.is_allowed("message-enum", line)) {
                    continue;
                }
                out.push(LintViolation {
                    rule: "message-enum",
                    file: file.clone(),
                    line,
                    message: format!(
                        "message variant `{qualified}` has no qualified use (no handler or construction site) in crates/live"
                    ),
                });
            }
        }
    }
}

// ------------------------------------------------------------ no-unwrap

fn hot_path(rel: &str) -> bool {
    rel.starts_with("crates/live/src/")
        || rel.starts_with("crates/wire/src/")
        || rel == "crates/telemetry/src/sink.rs"
}

fn check_no_unwrap(src: &Source, out: &mut Vec<LintViolation>) {
    if !hot_path(&src.rel) {
        return;
    }
    // Test modules sit at the bottom of each file by workspace
    // convention; everything from the first #[cfg(test)] down is exempt.
    let cutoff = src
        .raw
        .find("#[cfg(test)]")
        .map(|p| line_of(&src.raw, p))
        .unwrap_or(usize::MAX);
    for needle in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(p) = src.scrubbed[from..].find(needle) {
            let pos = from + p;
            from = pos + needle.len();
            let line = line_of(&src.scrubbed, pos);
            if line >= cutoff || src.is_allowed("no-unwrap", line) {
                continue;
            }
            out.push(LintViolation {
                rule: "no-unwrap",
                file: src.rel.clone(),
                line,
                message: format!(
                    "`{needle}` in a live hot path — propagate the error (shutdown accounting must see every failure)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_preserving_lines() {
        let s = scrub("let a = 1; // unwrap() here\n/* parking_lot */ let b = 2;\n");
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("parking_lot"));
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("let b = 2;"));
        // String literals survive scrubbing.
        let s = scrub("let m = \"// not a comment\";\n");
        assert!(s.contains("not a comment"));
    }

    #[test]
    fn token_boundaries_respected() {
        assert_eq!(find_tokens("span_durations_us(x, y)", "span(").len(), 0);
        assert_eq!(find_tokens("tele.span(a, b)", "span(").len(), 1);
        assert_eq!(find_tokens("r.instant(t)", "instant(").len(), 1);
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let sup = suppressions("x\n// oddci-check: allow(no-unwrap)\ny.unwrap()\n");
        assert!(sup.get(&2).is_some_and(|r| r.contains("no-unwrap")));
        assert!(sup.get(&3).is_some_and(|r| r.contains("no-unwrap")));
        assert!(!sup.contains_key(&4));
    }

    #[test]
    fn workspace_is_clean() {
        let root = find_root(Path::new(".")).expect("workspace root findable from test cwd");
        let violations = run(&root).expect("lint runs");
        assert!(
            violations.is_empty(),
            "workspace lint must be clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
