//! Lock-acquisition-order graph and potential-deadlock detection.
//!
//! Every [`crate::sync`] lock registers itself here. When checking is
//! enabled ([`crate::enabled`]), each acquisition records one edge per
//! lock currently held by the acquiring thread: *held → acquired*. A
//! cycle in that graph is a potential deadlock — two threads can acquire
//! the cycle's locks in opposite orders — and is reported with the
//! acquisition backtraces of the edges involved, whether or not the
//! deadlock actually fires in this run. This is the classic lockdep
//! construction: it turns a timing-dependent hang into a deterministic
//! report the first time the inconsistent order is *exercised*.
//!
//! The same per-thread held-stack backs `check_channel_send`, which
//! enforces the workspace locking rule that keeps the live headend
//! deadlock-free: **never send on a channel while holding a
//! send-sensitive lock** (the hub). Violations are recorded, not
//! panicked, so a run reports every finding; tests assert on
//! [`take_violations`].

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a dynamic check found.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Adding `from → to` closed a cycle in the acquisition-order graph.
    LockOrderCycle {
        /// Lock names along the cycle, ending where it started.
        cycle: Vec<String>,
        /// Backtrace of the acquisition that closed the cycle.
        backtrace: String,
        /// Backtrace of the first acquisition of the reverse edge.
        prior_backtrace: String,
    },
    /// A channel send happened while a send-sensitive lock was held.
    SendWhileLocked {
        /// Name of the held lock.
        lock: String,
        /// Backtrace of the send.
        backtrace: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LockOrderCycle {
                cycle,
                backtrace,
                prior_backtrace,
            } => {
                writeln!(
                    f,
                    "potential deadlock: lock-order cycle {}",
                    cycle.join(" -> ")
                )?;
                writeln!(f, "-- acquisition closing the cycle:\n{backtrace}")?;
                write!(
                    f,
                    "-- earlier acquisition of the reverse edge:\n{prior_backtrace}"
                )
            }
            Violation::SendWhileLocked { lock, backtrace } => {
                write!(
                    f,
                    "channel send while holding send-sensitive lock `{lock}`:\n{backtrace}"
                )
            }
        }
    }
}

#[derive(Debug, Default)]
struct Graph {
    /// Lock id → human name ("live.hub", "sink.lane", or "lock#N").
    names: BTreeMap<u64, String>,
    /// Lock id → channel sends are forbidden while it is held.
    send_sensitive: BTreeMap<u64, bool>,
    /// Edge (held, acquired) → backtrace of its first sighting.
    edges: BTreeMap<(u64, u64), String>,
    violations: Vec<Violation>,
    /// Edges already reported as part of a cycle (one report per edge).
    reported: BTreeMap<(u64, u64), bool>,
}

impl Graph {
    fn name(&self, id: u64) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("lock#{id}"))
    }

    /// Is there a path `from →* to` using recorded edges?
    fn path_exists(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        let mut stack = vec![vec![from]];
        let mut seen = BTreeMap::new();
        seen.insert(from, true);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            if last == to {
                return Some(path);
            }
            for &(a, b) in self.edges.keys() {
                if a == last && seen.insert(b, true).is_none() {
                    let mut next = path.clone();
                    next.push(b);
                    stack.push(next);
                }
            }
        }
        None
    }
}

static GRAPH: Mutex<Option<Graph>> = Mutex::new(None);
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Lock ids this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    let mut slot = GRAPH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(slot.get_or_insert_with(Graph::default))
}

/// Allocate a fresh lock id (called by [`crate::sync`] constructors; ids
/// are allocated even with checking off so enabling mid-run works).
pub(crate) fn register(name: Option<&'static str>, send_sensitive: bool) -> u64 {
    let id = NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed);
    if name.is_some() || send_sensitive {
        with_graph(|g| {
            if let Some(n) = name {
                g.names.insert(id, n.to_string());
            }
            if send_sensitive {
                g.send_sensitive.insert(id, true);
            }
        });
    }
    id
}

/// Record an acquisition: one `held → id` edge per currently-held lock,
/// with cycle detection on new edges. No-op when checking is off.
pub(crate) fn on_acquire(id: u64) {
    if !crate::enabled() {
        return;
    }
    let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
    if !held.is_empty() {
        with_graph(|g| {
            for &h in &held {
                if h == id || g.edges.contains_key(&(h, id)) {
                    continue;
                }
                let backtrace = Backtrace::force_capture().to_string();
                // Cycle iff the reverse direction is already reachable.
                if let Some(path) = g.path_exists(id, h) {
                    if g.reported.insert((h, id), true).is_none() {
                        let mut cycle: Vec<String> = path.iter().map(|&n| g.name(n)).collect();
                        cycle.push(g.name(id));
                        let prior = g
                            .edges
                            .get(&(id, *path.get(1).unwrap_or(&h)))
                            .cloned()
                            .unwrap_or_else(|| "<first edge of path>".to_string());
                        g.violations.push(Violation::LockOrderCycle {
                            cycle,
                            backtrace: backtrace.clone(),
                            prior_backtrace: prior,
                        });
                    }
                }
                g.edges.insert((h, id), backtrace);
            }
        });
    }
    HELD.with(|h| h.borrow_mut().push(id));
}

/// Record a release (pops the most recent occurrence — guards may drop
/// out of order). No-op when checking is off.
pub(crate) fn on_release(id: u64) {
    if !crate::enabled() {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&x| x == id) {
            held.remove(pos);
        }
    });
}

/// Called by [`crate::sync::Sender::send`]: flags a send performed while
/// any send-sensitive lock is held. No-op when checking is off.
pub(crate) fn check_channel_send() {
    if !crate::enabled() {
        return;
    }
    let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    with_graph(|g| {
        for &h in &held {
            if g.send_sensitive.get(&h).copied().unwrap_or(false) {
                g.violations.push(Violation::SendWhileLocked {
                    lock: g.name(h),
                    backtrace: Backtrace::force_capture().to_string(),
                });
            }
        }
    });
}

/// True when the current thread holds the named lock (diagnostic hook for
/// call sites that want to assert the documented discipline directly).
pub fn current_thread_holds(name: &str) -> bool {
    if !crate::enabled() {
        return false;
    }
    let held: Vec<u64> = HELD.with(|h| h.borrow().clone());
    with_graph(|g| {
        held.iter()
            .any(|id| g.names.get(id).map(String::as_str) == Some(name))
    })
}

/// Drain every violation recorded so far (tests assert on this; the CLI
/// prints them).
pub fn take_violations() -> Vec<Violation> {
    with_graph(|g| std::mem::take(&mut g.violations))
}

/// Number of violations currently recorded.
pub fn violation_count() -> usize {
    with_graph(|g| g.violations.len())
}

/// Reset the whole graph (edges, names of dropped locks, violations) —
/// test isolation helper.
pub fn reset() {
    let mut slot = GRAPH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global graph is process-wide, so every assertion about it
    /// lives in this one serialized test.
    #[test]
    fn detects_ab_ba_cycle_and_send_while_locked() {
        crate::enable();
        reset();
        let a = crate::sync::Mutex::named(0u32, "test.a");
        let b = crate::sync::Mutex::named(0u32, "test.b");
        {
            let _ga = a.lock();
            let _gb = b.lock(); // edge a -> b
        }
        assert_eq!(violation_count(), 0, "consistent order is clean");
        {
            let _gb = b.lock();
            let _ga = a.lock(); // edge b -> a closes the cycle
        }
        let v = take_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        match &v[0] {
            Violation::LockOrderCycle { cycle, .. } => {
                assert!(cycle.contains(&"test.a".to_string()), "{cycle:?}");
                assert!(cycle.contains(&"test.b".to_string()), "{cycle:?}");
            }
            other => panic!("expected cycle, got {other}"),
        }

        // Send-while-locked: a send under a send-sensitive lock is
        // flagged; the same send after release is clean.
        let hub = crate::sync::Mutex::named_send_sensitive(0u32, "test.hub");
        let (tx, _rx) = crate::sync::unbounded::<u8>();
        {
            let _g = hub.lock();
            assert!(current_thread_holds("test.hub"));
            let _ = tx.send(1);
        }
        assert!(!current_thread_holds("test.hub"));
        let _ = tx.send(2);
        let v = take_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(&v[0], Violation::SendWhileLocked { lock, .. } if lock == "test.hub"));

        crate::disable();
        reset();
    }
}
