#![forbid(unsafe_code)]

//! # oddci-check — concurrency correctness tooling for the OddCI stack
//!
//! The live plane is genuinely concurrent: a carousel thread, N controller
//! shards with per-shard heartbeat ledgers, a dispatch pool and a
//! streaming-sink writer thread all share state through channels, atomics
//! and locks. This crate is the machine-checked discipline behind that
//! concurrency, in three layers:
//!
//! 1. **An instrumented sync shim** ([`sync`]): drop-in `Mutex` /
//!    `RwLock` / `Monitor` / channel wrappers the whole workspace uses
//!    instead of raw `parking_lot` / `std::sync` / `crossbeam` types.
//!    With checking disabled (the default) each operation costs one
//!    relaxed atomic load on top of the underlying primitive. With
//!    checking enabled ([`enable`] or `ODDCI_CHECK=1`), every acquisition
//!    feeds a global lock-order graph ([`order`]) that detects
//!    potential-deadlock cycles — with the acquisition backtraces of the
//!    offending edges — and every channel send is checked against the
//!    workspace locking rule *never send on a channel while holding a
//!    send-sensitive lock* (e.g. the live headend's hub).
//! 2. **Dynamic detectors**: the lock-order graph ([`order`]) and a
//!    vector-clock happens-before race detector ([`hb`]) usable both
//!    standalone (model the protocol, feed it accesses) and wired into
//!    the schedule explorer's model primitives.
//! 3. **A deterministic schedule explorer** ([`explore`]): scaled-down
//!    models of the sharded-headend protocols ([`scenarios`]) run under a
//!    seeded cooperative scheduler that permutes yield points — bounded
//!    DFS over interleavings with a replayable schedule string printed on
//!    failure, so any discovered race becomes a deterministic regression
//!    test (see `tests/check_schedules.rs` at the workspace root).
//!
//! A fourth piece, [`lint`], is a dependency-free line/token workspace
//! linter enforcing the static side of the same invariants: no raw lock
//! types outside this crate, the telemetry phase vocabulary stays closed
//! (span phases via `span`/`duration`, instant phases via `instant`),
//! every live message-enum variant has a handler, and `unwrap()` /
//! `expect()` are banned in the live hot paths. Run it (and the explorer)
//! via the `oddci-check` binary or the `oddci check` CLI subcommand.

pub mod explore;
pub mod hb;
pub mod lint;
pub mod order;
pub mod scenarios;
pub mod sync;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state so the first query can fold the environment in exactly once:
/// 0 = undecided, 1 = off, 2 = on.
static CHECKING: AtomicU8 = AtomicU8::new(0);

/// True when dynamic checking (lock-order graph, send-while-locked
/// checks) is active. First call consults the `ODDCI_CHECK` environment
/// variable; [`enable`] / [`disable`] override it programmatically.
pub fn enabled() -> bool {
    match CHECKING.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("ODDCI_CHECK").is_ok_and(|v| v == "1" || v == "true");
            CHECKING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Turn dynamic checking on for this process (tests call this in their
/// first line; production binaries leave it off).
pub fn enable() {
    CHECKING.store(2, Ordering::Relaxed);
}

/// Turn dynamic checking off.
pub fn disable() {
    CHECKING.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_disable_round_trip() {
        super::enable();
        assert!(super::enabled());
        super::disable();
        assert!(!super::enabled());
    }
}
