#![forbid(unsafe_code)]

//! # OddCI — On-Demand Distributed Computing Infrastructure
//!
//! A full reproduction of Costa, Brasileiro, Lemos Filho & Mariz Sousa,
//! *"OddCI: On-Demand Distributed Computing Infrastructure"* (SC/MTAGS
//! 2009): the broadcast-activated DCI architecture, its digital-TV
//! instantiation (OddCI-DTV), the paper's analytical performance models,
//! and every experiment of its evaluation section.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. Depend on it for everything, or on the individual crates
//! (`oddci-core`, `oddci-sim`, ...) for narrower builds.
//!
//! ## Layer map
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`types`] | `oddci-types` | IDs, units (bits / bps / sim-time), config, errors |
//! | [`crypto`] | `oddci-crypto` | SHA-256 + HMAC message authentication (from scratch) |
//! | [`sim`] | `oddci-sim` | deterministic discrete-event engine, churn, statistics |
//! | [`broadcast`] | `oddci-broadcast` | MPEG-2 TS multiplex, DSM-CC object carousel, AIT |
//! | [`receiver`] | `oddci-receiver` | set-top box, Xlet middleware, DVE, calibrated compute |
//! | [`net`] | `oddci-net` | δ-bps direct channels, Controller capacity model |
//! | [`faults`] | `oddci-faults` | deterministic fault-injection plans, backoff policies |
//! | [`telemetry`] | `oddci-telemetry` | spans/events, metrics registry, latency histograms, trace exporters |
//! | [`core`] | `oddci-core` | Provider / Controller / Backend / PNA + the world simulation |
//! | [`workload`] | `oddci-workload` | MTC jobs, suitability Φ, BLAST dataset, alignment kernel |
//! | [`analytics`] | `oddci-analytics` | closed forms: `W = 1.5·I/β`, makespan eq. (1), efficiency eq. (2) |
//! | [`baselines`] | `oddci-baselines` | desktop grid / voluntary / IaaS deployment models |
//! | [`live`] | `oddci-live` | thread-per-receiver runtime doing real alignment work |
//! | [`wire`] | `oddci-wire` | framed, checksummed TCP transport for the live plane |
//!
//! ## Quickstart
//!
//! ```
//! use oddci::core::{World, WorldConfig};
//! use oddci::types::{DataSize, SimDuration, SimTime};
//! use oddci::workload::JobGenerator;
//!
//! // A 500-receiver DTV channel...
//! let mut cfg = WorldConfig::default();
//! cfg.nodes = 500;
//!
//! // ...and a bag of 1000 30-second tasks behind a 1 MB image.
//! let job = JobGenerator::homogeneous(
//!     DataSize::from_megabytes(1),
//!     DataSize::from_bytes(500),
//!     DataSize::from_bytes(500),
//!     SimDuration::from_secs(30),
//!     7,
//! )
//! .generate(1000);
//!
//! // Wake up a 100-node OddCI instance and run the job to completion.
//! let mut sim = World::simulation(cfg, 42);
//! let request = sim.submit_job(job, 100);
//! let report = sim
//!     .run_request(request, SimTime::from_secs(24 * 3600))
//!     .expect("completes well before a day");
//! assert_eq!(report.tasks_completed, 1000);
//! ```

pub use oddci_analytics as analytics;
pub use oddci_baselines as baselines;
pub use oddci_broadcast as broadcast;
pub use oddci_check as check;
pub use oddci_core as core;
pub use oddci_crypto as crypto;
pub use oddci_faults as faults;
pub use oddci_live as live;
pub use oddci_net as net;
pub use oddci_receiver as receiver;
pub use oddci_sim as sim;
pub use oddci_telemetry as telemetry;
pub use oddci_types as types;
pub use oddci_wire as wire;
pub use oddci_workload as workload;

/// Version of the reproduction (mirrors the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
